//===- tests/ArchTest.cpp - machine description tests ---------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/arch/MachineConfig.h"

#include <gtest/gtest.h>

using namespace cvliw;

TEST(MachineConfig, Table2Defaults) {
  MachineConfig C = MachineConfig::baseline();
  EXPECT_EQ(C.NumClusters, 4u);
  EXPECT_EQ(C.CacheModuleBytes * C.NumClusters, 8192u) << "8KB total";
  EXPECT_EQ(C.CacheBlockBytes, 32u);
  EXPECT_EQ(C.CacheAssociativity, 2u);
  EXPECT_EQ(C.MemoryBuses.Count, 4u);
  EXPECT_EQ(C.MemoryBuses.Latency, 2u) << "half core frequency";
  EXPECT_EQ(C.RegisterBuses.Count, 4u);
  EXPECT_EQ(C.NextLevelPorts, 4u);
  EXPECT_EQ(C.NextLevelLatency, 10u);
  EXPECT_FALSE(C.AttractionBuffersEnabled);
}

TEST(MachineConfig, HomeClusterInterleaving) {
  MachineConfig C = MachineConfig::baseline();
  C.InterleaveBytes = 4;
  // Figure 1: W0..W7 of a block map round-robin across clusters.
  EXPECT_EQ(C.homeCluster(0), 0u);
  EXPECT_EQ(C.homeCluster(4), 1u);
  EXPECT_EQ(C.homeCluster(8), 2u);
  EXPECT_EQ(C.homeCluster(12), 3u);
  EXPECT_EQ(C.homeCluster(16), 0u) << "W4 maps back to cluster 1's pair";
  // Within one interleaving chunk, all bytes share the home.
  EXPECT_EQ(C.homeCluster(5), 1u);
  EXPECT_EQ(C.homeCluster(7), 1u);
}

TEST(MachineConfig, HomeClusterTwoByteInterleave) {
  MachineConfig C = MachineConfig::baseline();
  C.InterleaveBytes = 2;
  EXPECT_EQ(C.homeCluster(0), 0u);
  EXPECT_EQ(C.homeCluster(2), 1u);
  EXPECT_EQ(C.homeCluster(6), 3u);
  EXPECT_EQ(C.homeCluster(8), 0u);
}

TEST(MachineConfig, SubblockGeometry) {
  MachineConfig C = MachineConfig::baseline();
  // A 32-byte block split over 4 clusters leaves 8 bytes per cluster
  // (the paper's "subblock": W0 and W4 for cluster 1).
  EXPECT_EQ(C.subblockBytes(), 8u);
  EXPECT_EQ(C.cacheSetsPerModule(), 2048u / 8 / 2);
}

TEST(MachineConfig, NominalLatencies) {
  MachineConfig C = MachineConfig::baseline();
  EXPECT_EQ(C.nominalLatency(AccessType::LocalHit), 1u);
  EXPECT_EQ(C.nominalLatency(AccessType::RemoteHit), 1u + 4u)
      << "request + reply bus hops at 2 cycles each";
  EXPECT_EQ(C.nominalLatency(AccessType::LocalMiss), 1u + 10u);
  EXPECT_EQ(C.nominalLatency(AccessType::RemoteMiss), 1u + 4u + 10u);
}

TEST(MachineConfig, LatencyOrdering) {
  // The four access types must be strictly ordered for the scheduler's
  // compromise latency assignment to make sense.
  for (const MachineConfig &C :
       {MachineConfig::baseline(), MachineConfig::nobalMem(),
        MachineConfig::nobalReg()}) {
    EXPECT_LT(C.nominalLatency(AccessType::LocalHit),
              C.nominalLatency(AccessType::RemoteHit));
    EXPECT_LT(C.nominalLatency(AccessType::RemoteHit),
              C.nominalLatency(AccessType::LocalMiss));
    EXPECT_LT(C.nominalLatency(AccessType::LocalMiss),
              C.nominalLatency(AccessType::RemoteMiss));
  }
}

TEST(MachineConfig, NobalConfigurations) {
  MachineConfig Mem = MachineConfig::nobalMem();
  EXPECT_EQ(Mem.MemoryBuses.Count, 4u);
  EXPECT_EQ(Mem.MemoryBuses.Latency, 2u);
  EXPECT_EQ(Mem.RegisterBuses.Count, 2u);
  EXPECT_EQ(Mem.RegisterBuses.Latency, 4u);

  MachineConfig Reg = MachineConfig::nobalReg();
  EXPECT_EQ(Reg.MemoryBuses.Count, 2u);
  EXPECT_EQ(Reg.MemoryBuses.Latency, 4u);
  EXPECT_EQ(Reg.RegisterBuses.Count, 4u);
  EXPECT_EQ(Reg.RegisterBuses.Latency, 2u);
}

TEST(MachineConfig, AttractionBufferConfig) {
  MachineConfig C = MachineConfig::withAttractionBuffers();
  EXPECT_TRUE(C.AttractionBuffersEnabled);
  EXPECT_EQ(C.AttractionBufferEntries, 16u);
  EXPECT_EQ(C.AttractionBufferAssociativity, 2u);
}

TEST(MachineConfig, AccessTypeNames) {
  EXPECT_STREQ(accessTypeName(AccessType::LocalHit), "local hit");
  EXPECT_STREQ(accessTypeName(AccessType::RemoteMiss), "remote miss");
  EXPECT_STREQ(accessTypeName(AccessType::Combined), "combined");
}

TEST(MachineConfig, SummaryMentionsKeyParameters) {
  std::string S = MachineConfig::baseline().summary();
  EXPECT_NE(S.find("4 clusters"), std::string::npos);
  EXPECT_NE(S.find("AB=off"), std::string::npos);
}
