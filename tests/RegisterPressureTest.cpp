//===- tests/RegisterPressureTest.cpp - MaxLive analysis tests ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/profile/ClusterProfiler.h"
#include "cvliw/sched/ModuloScheduler.h"
#include "cvliw/sched/RegisterPressure.h"
#include "cvliw/workloads/Suite.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

/// load -> add, hand-scheduled, with a controllable consumer distance.
struct Pair {
  Loop L{"pressure"};
  DDG G;

  Pair() {
    unsigned Obj = L.addObject({"a", 0, 1024, UniqueAliasGroup});
    unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
    L.addOp(Operation::load(1, S));
    L.addOp(Operation::compute(Opcode::IAdd, 2, {1}));
    G = buildRegisterFlowDDG(L);
  }

  Schedule schedule(unsigned ConsumerCycle, unsigned II) {
    Schedule S;
    S.II = II;
    S.Length = ConsumerCycle + 1;
    S.Ops.resize(2);
    S.Ops[0] = {0, 0, 1};
    S.Ops[1] = {ConsumerCycle, 0, 1};
    return S;
  }
};

} // namespace

TEST(RegisterPressure, ShortLifetimeIsOneRegister) {
  Pair P;
  Schedule S = P.schedule(/*ConsumerCycle=*/1, /*II=*/4);
  PressureResult R =
      computeRegisterPressure(P.L, P.G, S, MachineConfig::baseline());
  // Load's value lives 1 cycle; the add's value (unused) lives a token
  // cycle; neither overlaps itself.
  EXPECT_LE(R.maxLive(), 2u);
  EXPECT_TRUE(R.fits(64));
}

TEST(RegisterPressure, LifetimeBeyondIIOverlapsInstances) {
  Pair P;
  // Lifetime 12 over II 4: three instances of the load's value live
  // simultaneously.
  PressureResult Short = computeRegisterPressure(
      P.L, P.G, P.schedule(1, 4), MachineConfig::baseline());
  PressureResult Long = computeRegisterPressure(
      P.L, P.G, P.schedule(12, 4), MachineConfig::baseline());
  EXPECT_GE(Long.MaxLivePerCluster[0], Short.MaxLivePerCluster[0] + 2);
}

TEST(RegisterPressure, CrossClusterConsumerCostsBothSides) {
  Pair P;
  Schedule S;
  S.II = 4;
  S.Length = 8;
  S.Ops.resize(2);
  S.Ops[0] = {0, 0, 1};
  S.Ops[1] = {7, 2, 1};
  S.Copies.push_back(CopyOp{0, 0, 2, 3});
  PressureResult R =
      computeRegisterPressure(P.L, P.G, S, MachineConfig::baseline());
  EXPECT_GE(R.MaxLivePerCluster[0], 1u) << "value held until departure";
  EXPECT_GE(R.MaxLivePerCluster[2], 1u) << "arrived copy held until read";
}

TEST(RegisterPressure, LongerAssumedLatenciesRaisePressure) {
  LoopSpec Spec;
  Spec.Name = "pressure_sweep";
  Spec.ConsistentLoads = 6;
  Spec.ConsistentStores = 2;
  Spec.ArithPerLoad = 1;
  Spec.SeedBase = 55;
  MachineConfig Machine = MachineConfig::baseline();
  Loop L = buildLoop(Spec, Machine);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  ClusterProfile P = profileLoop(L, Machine);

  unsigned Pressure[2];
  unsigned I = 0;
  for (bool Assign : {false, true}) {
    SchedulerOptions Opts;
    Opts.AssignLatencies = Assign;
    ModuloScheduler Scheduler(L, G, Machine, P, Opts);
    auto S = Scheduler.run();
    ASSERT_TRUE(S.has_value());
    Pressure[I++] = computeRegisterPressure(L, G, *S, Machine).maxLive();
  }
  EXPECT_GE(Pressure[1], Pressure[0])
      << "pushing consumers away from loads stretches lifetimes";
}

TEST(RegisterPressure, SuiteSchedulesFitRealisticRegisterFiles) {
  // The lifetime cap in the scheduler exists to keep pressure sane;
  // verify the whole suite stays within a 64-register cluster file.
  MachineConfig Machine = MachineConfig::baseline();
  for (const BenchmarkSpec &Bench : evaluationSuite()) {
    Machine.InterleaveBytes = Bench.InterleaveBytes;
    for (const LoopSpec &Spec : Bench.Loops) {
      Loop L = buildLoop(Spec, Machine);
      DDG G = buildRegisterFlowDDG(L);
      MemoryDisambiguator D(L);
      D.addMemoryEdges(G);
      ClusterProfile P = profileLoop(L, Machine);
      SchedulerOptions Opts;
      Opts.Heuristic = ClusterHeuristic::PrefClus;
      ModuloScheduler Scheduler(L, G, Machine, P, Opts);
      auto S = Scheduler.run();
      ASSERT_TRUE(S.has_value()) << Spec.Name;
      PressureResult R = computeRegisterPressure(L, G, *S, Machine);
      EXPECT_TRUE(R.fits(64))
          << Spec.Name << " needs " << R.maxLive() << " registers";
    }
  }
}
