//===- tests/IrTest.cpp - IR data structure tests -------------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/ir/Loop.h"

#include <gtest/gtest.h>

using namespace cvliw;

TEST(Opcode, Classification) {
  EXPECT_TRUE(isMemoryOpcode(Opcode::Load));
  EXPECT_TRUE(isMemoryOpcode(Opcode::Store));
  EXPECT_FALSE(isMemoryOpcode(Opcode::IAdd));
  EXPECT_FALSE(isMemoryOpcode(Opcode::FakeCons));

  EXPECT_EQ(fuClassOf(Opcode::Load), FuClass::Memory);
  EXPECT_EQ(fuClassOf(Opcode::FAdd), FuClass::Float);
  EXPECT_EQ(fuClassOf(Opcode::IAdd), FuClass::Integer);
  EXPECT_EQ(fuClassOf(Opcode::FakeCons), FuClass::Integer)
      << "the fake consumer is a plain integer add (paper §3.3)";
}

TEST(Opcode, Latencies) {
  EXPECT_EQ(opcodeLatency(Opcode::IAdd), 1u);
  EXPECT_GT(opcodeLatency(Opcode::FDiv), opcodeLatency(Opcode::FMul));
  EXPECT_EQ(opcodeLatency(Opcode::Load), 1u)
      << "the memory system supplies the rest of a load's latency";
}

TEST(Opcode, Names) {
  EXPECT_STREQ(opcodeName(Opcode::Load), "load");
  EXPECT_STREQ(opcodeName(Opcode::FakeCons), "fake_cons");
}

TEST(AddressExpr, AffineProgression) {
  MemObject Obj{"a", 0x1000, 1024, UniqueAliasGroup};
  AddressExpr E = AddressExpr::affine(0, 8, 16, 4);
  EXPECT_EQ(E.addressAt(0, Obj, 1), 0x1000u + 8);
  EXPECT_EQ(E.addressAt(1, Obj, 1), 0x1000u + 24);
  EXPECT_EQ(E.addressAt(10, Obj, 1), 0x1000u + 168);
}

TEST(AddressExpr, AffineWrapsModuloObject) {
  MemObject Obj{"a", 0x1000, 64, UniqueAliasGroup};
  AddressExpr E = AddressExpr::affine(0, 0, 16, 4);
  EXPECT_EQ(E.addressAt(4, Obj, 1), 0x1000u) << "64/16 = 4 wraps to start";
  EXPECT_EQ(E.addressAt(5, Obj, 1), 0x1000u + 16);
}

TEST(AddressExpr, AffineIgnoresInputSeed) {
  // Strided accesses have input-independent trajectories (the padding
  // argument of §2.2).
  MemObject Obj{"a", 0, 4096, UniqueAliasGroup};
  AddressExpr E = AddressExpr::affine(0, 4, 16, 4);
  for (uint64_t I = 0; I != 64; ++I)
    EXPECT_EQ(E.addressAt(I, Obj, 1), E.addressAt(I, Obj, 999));
}

TEST(AddressExpr, AffineNegativeStride) {
  MemObject Obj{"a", 0x1000, 64, UniqueAliasGroup};
  AddressExpr E = AddressExpr::affine(0, 0, -16, 4);
  EXPECT_EQ(E.addressAt(1, Obj, 1), 0x1000u + 48) << "wraps backwards";
}

TEST(AddressExpr, GatherDeterministicPerSeed) {
  MemObject Obj{"t", 0x2000, 1024, UniqueAliasGroup};
  AddressExpr E = AddressExpr::gather(0, 4, /*Seed=*/7);
  for (uint64_t I = 0; I != 100; ++I) {
    uint64_t A = E.addressAt(I, Obj, 1);
    EXPECT_EQ(A, E.addressAt(I, Obj, 1)) << "stateless hash";
    EXPECT_GE(A, Obj.BaseAddr);
    EXPECT_LT(A + E.AccessBytes, Obj.BaseAddr + Obj.SizeBytes + 1);
    EXPECT_EQ((A - Obj.BaseAddr) % E.AccessBytes, 0u) << "element aligned";
  }
}

TEST(AddressExpr, GatherVariesWithInputSeed) {
  MemObject Obj{"t", 0, 4096, UniqueAliasGroup};
  AddressExpr E = AddressExpr::gather(0, 4, 7);
  unsigned Different = 0;
  for (uint64_t I = 0; I != 64; ++I)
    Different += E.addressAt(I, Obj, 1) != E.addressAt(I, Obj, 2);
  EXPECT_GT(Different, 32u) << "profile and execution inputs differ";
}

TEST(Loop, AddObjectsStreamsOps) {
  Loop L("test");
  unsigned Obj = L.addObject({"a", 0, 256, UniqueAliasGroup});
  unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 4, 4));
  unsigned Id = L.addOp(Operation::load(1, S));
  EXPECT_EQ(L.numOps(), 1u);
  EXPECT_TRUE(L.op(Id).isLoad());
  EXPECT_EQ(L.numMemoryOps(), 1u);
  EXPECT_EQ(L.addressOf(Id, 3, L.ExecSeed), 12u);
}

TEST(Loop, FreshRegAboveAllUses) {
  Loop L("test");
  unsigned Obj = L.addObject({"a", 0, 256, UniqueAliasGroup});
  unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 4, 4));
  L.addOp(Operation::load(7, S));
  L.addOp(Operation::compute(Opcode::IAdd, 3, {7, 11}));
  EXPECT_EQ(L.freshReg(), 12u);
}

TEST(Operation, Builders) {
  Operation Ld = Operation::load(5, 2);
  EXPECT_TRUE(Ld.isLoad());
  EXPECT_FALSE(Ld.isStore());
  EXPECT_EQ(Ld.Dest, 5u);
  EXPECT_EQ(Ld.StreamId, 2u);

  Operation St = Operation::store(5, 3);
  EXPECT_TRUE(St.isStore());
  EXPECT_EQ(St.Dest, NoReg);
  ASSERT_EQ(St.Sources.size(), 1u);
  EXPECT_EQ(St.Sources[0], 5u);

  Operation Add = Operation::compute(Opcode::IAdd, 9, {1, 2});
  EXPECT_FALSE(Add.isMemory());
  EXPECT_FALSE(Add.isReplica());
}
