//===- tests/DDGTransformTest.cpp - DDGT solution tests -------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/sched/DDGTransform.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

/// The paper's Figure 3 running example (see ChainsTest for the layout):
/// n1=op0 load, n2=op1 load, n3=op2 store, n4=op3 store, n5=op4 add.
Loop figure3Loop() {
  Loop L("fig3");
  unsigned Group = 1;
  unsigned A = L.addObject({"A", 0x1000, 1024, Group});
  unsigned B = L.addObject({"B", 0x3000, 1024, Group});
  unsigned C = L.addObject({"C", 0x5000, 1024, Group});
  unsigned D = L.addObject({"D", 0x7000, 1024, Group});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::affine(A, 0, 16, 4))));
  L.addOp(Operation::load(2, L.addStream(AddressExpr::affine(B, 4, 16, 4))));
  L.addOp(Operation::store(1, L.addStream(AddressExpr::affine(C, 8, 16, 4))));
  L.addOp(
      Operation::store(2, L.addStream(AddressExpr::affine(D, 12, 16, 4))));
  L.addOp(Operation::compute(Opcode::IAdd, 3, {1, 2}));
  return L;
}

DDGTResult transformFigure3() {
  Loop L = figure3Loop();
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  return applyDDGT(L, G, MachineConfig::baseline());
}

} // namespace

TEST(DDGT, ReplicatesDependentStores) {
  DDGTResult R = transformFigure3();
  EXPECT_EQ(R.Stats.StoresReplicated, 2u) << "n3 and n4";
  EXPECT_EQ(R.Stats.ReplicaOpsAdded, 6u) << "N-1 = 3 clones each";
  // 5 original ops + 6 clones.
  EXPECT_EQ(R.TransformedLoop.numOps(), 11u);

  // Instance 0 is the original, instances 1..3 are appended clones; all
  // four instances of one store share the original's stream.
  const Loop &L = R.TransformedLoop;
  EXPECT_TRUE(L.op(2).isReplica());
  EXPECT_EQ(L.op(2).ReplicaOf, 2u);
  EXPECT_EQ(L.op(2).ReplicaIndex, 0u);
  unsigned InstancesOfN3 = 0;
  for (unsigned Id = 0; Id != L.numOps(); ++Id)
    if (L.op(Id).isStore() && L.op(Id).ReplicaOf == 2u) {
      ++InstancesOfN3;
      EXPECT_EQ(L.op(Id).StreamId, L.op(2).StreamId);
    }
  EXPECT_EQ(InstancesOfN3, 4u);
}

TEST(DDGT, RemovesAllMaEdges) {
  DDGTResult R = transformFigure3();
  R.TransformedDDG.forEachEdge([&](unsigned, const DepEdge &E) {
    EXPECT_NE(E.Kind, DepKind::MemAnti)
        << "load-store synchronization must consume every MA edge";
  });
  EXPECT_GT(R.Stats.MaEdgesRemoved, 0u);
}

TEST(DDGT, SyncEdgesTargetStoresFromConsumer) {
  DDGTResult R = transformFigure3();
  const Loop &L = R.TransformedLoop;
  unsigned SyncCount = 0;
  R.TransformedDDG.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Kind != DepKind::Sync)
      return;
    ++SyncCount;
    EXPECT_TRUE(L.op(E.Dst).isStore());
    // The consumer in Figure 5 is n5 (op 4), not a fake consumer, since
    // n5 is a plain add.
    EXPECT_EQ(E.Src, 4u);
  });
  EXPECT_GT(SyncCount, 0u);
  EXPECT_EQ(R.Stats.FakeConsumersAdded, 0u)
      << "n5 exists and is not a memory op, no fake consumer needed";
}

TEST(DDGT, ReplicaEdgesCoverAllInstances) {
  DDGTResult R = transformFigure3();
  const Loop &L = R.TransformedLoop;
  const DDG &G = R.TransformedDDG;
  // Every instance of n3 must receive the RF value edge from n1 (op 0).
  unsigned RfIntoInstances = 0;
  G.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Kind == DepKind::RegFlow && E.Src == 0 &&
        L.op(E.Dst).isStore() && L.op(E.Dst).ReplicaOf == 2u)
      ++RfIntoInstances;
  });
  EXPECT_EQ(RfIntoInstances, 4u)
      << "replicating a store replicates its input dependences";
}

TEST(DDGT, PairwiseStoreOrderingPerInstance) {
  DDGTResult R = transformFigure3();
  const Loop &L = R.TransformedLoop;
  const DDG &G = R.TransformedDDG;
  // MO edges between instances of n3 and n4 must connect instance k to
  // instance k (same prospective cluster), never across instances.
  G.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Kind != DepKind::MemOutput || E.Src == E.Dst)
      return;
    const Operation &Src = L.op(E.Src);
    const Operation &Dst = L.op(E.Dst);
    if (Src.ReplicaOf == 2u && Dst.ReplicaOf == 3u) {
      EXPECT_EQ(Src.ReplicaIndex, Dst.ReplicaIndex);
    }
  });
}

TEST(DDGT, TransformedGraphIsWellFormed) {
  DDGTResult R = transformFigure3();
  EXPECT_TRUE(verifyDDG(R.TransformedLoop, R.TransformedDDG));
}

TEST(DDGT, RedundantMaElidedWhenRfExists) {
  // load r1; store r1 to an aliasing location: the MA edge is redundant
  // because the store already consumes the load's value (RF, same
  // distance 0).
  Loop L("redundant");
  unsigned Obj = L.addObject({"o", 0, 256, UniqueAliasGroup});
  unsigned S1 = L.addStream(AddressExpr::gather(Obj, 4, 1));
  unsigned S2 = L.addStream(AddressExpr::gather(Obj, 4, 2));
  L.addOp(Operation::load(1, S1));
  L.addOp(Operation::store(1, S2));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  ASSERT_TRUE(G.hasEdge(0, 1, DepKind::MemAnti, 0));

  DDGTResult R = applyDDGT(L, G, MachineConfig::baseline());
  EXPECT_GT(R.Stats.RedundantMaElided, 0u);
}

TEST(DDGT, FakeConsumerForImpossibleLoop) {
  // The paper's tricky case: the only consumer of load L is a store M
  // sequentially posterior to S and dependent on S. Layout:
  //   op0: load  r1   (L)          — only consumer is op2
  //   op1: store      (S)  aliases L and M
  //   op2: store r1   (M)  aliases S
  Loop L("hazard");
  unsigned Obj = L.addObject({"o", 0, 256, UniqueAliasGroup});
  unsigned SL = L.addStream(AddressExpr::gather(Obj, 4, 1));
  unsigned SS = L.addStream(AddressExpr::gather(Obj, 4, 2));
  unsigned SM = L.addStream(AddressExpr::gather(Obj, 4, 3));
  L.addOp(Operation::load(1, SL));
  L.addOp(Operation::store(NoReg, SS));
  L.addOp(Operation::store(1, SM));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  ASSERT_TRUE(G.hasEdge(0, 1, DepKind::MemAnti, 0)) << "MA L -> S exists";

  DDGTResult R = applyDDGT(L, G, MachineConfig::baseline());
  EXPECT_EQ(R.Stats.FakeConsumersAdded, 1u);

  // The fake consumer reads the load's register and nothing else.
  const Loop &TL = R.TransformedLoop;
  unsigned FakeId = ~0u;
  for (unsigned Id = 0; Id != TL.numOps(); ++Id)
    if (TL.op(Id).isFakeConsumer())
      FakeId = Id;
  ASSERT_NE(FakeId, ~0u);
  ASSERT_EQ(TL.op(FakeId).Sources.size(), 1u);
  EXPECT_EQ(TL.op(FakeId).Sources[0], 1u);
  EXPECT_TRUE(R.TransformedDDG.hasRegFlow(0, FakeId, 0));

  // No SYNC edge may start at a memory op (that was the impossible
  // loop); they start at the fake consumer instead.
  R.TransformedDDG.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Kind == DepKind::Sync) {
      EXPECT_FALSE(TL.op(E.Src).isMemory());
    }
  });
  EXPECT_TRUE(verifyDDG(TL, R.TransformedDDG));
}

TEST(DDGT, FakeConsumerReusedAcrossMaEdges) {
  // One load with two hazardous MA targets gets a single fake consumer.
  Loop L("reuse");
  unsigned Obj = L.addObject({"o", 0, 256, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::gather(Obj, 4, 1))));
  L.addOp(
      Operation::store(NoReg, L.addStream(AddressExpr::gather(Obj, 4, 2))));
  L.addOp(
      Operation::store(NoReg, L.addStream(AddressExpr::gather(Obj, 4, 3))));
  L.addOp(Operation::store(1, L.addStream(AddressExpr::gather(Obj, 4, 4))));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  DDGTResult R = applyDDGT(L, G, MachineConfig::baseline());
  EXPECT_LE(R.Stats.FakeConsumersAdded, 1u);
}

TEST(DDGT, IndependentStoresNotReplicated) {
  Loop L("independent");
  unsigned ObjA = L.addObject({"a", 0, 1024, UniqueAliasGroup});
  unsigned ObjB = L.addObject({"b", 0x10000, 1024, UniqueAliasGroup});
  L.addOp(
      Operation::load(1, L.addStream(AddressExpr::affine(ObjA, 0, 16, 4))));
  L.addOp(Operation::store(
      1, L.addStream(AddressExpr::affine(ObjB, 0, 16, 4))));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  DDGTResult R = applyDDGT(L, G, MachineConfig::baseline());
  EXPECT_EQ(R.Stats.StoresReplicated, 0u)
      << "only stores with memory dependences are replicated";
  EXPECT_EQ(R.TransformedLoop.numOps(), L.numOps());
}

TEST(DDGT, SelfDependentStoreEdgesPerInstance) {
  // A memory dependent store with a self MO edge: each instance keeps a
  // self edge; no cross-instance self-derived edges appear.
  Loop L("selfdep");
  unsigned Obj = L.addObject({"o", 0, 256, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::gather(Obj, 4, 1))));
  unsigned StoreId = L.addOp(
      Operation::store(1, L.addStream(AddressExpr::gather(Obj, 4, 2))));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  ASSERT_TRUE(G.hasEdge(StoreId, StoreId, DepKind::MemOutput, 1));

  DDGTResult R = applyDDGT(L, G, MachineConfig::baseline());
  const Loop &TL = R.TransformedLoop;
  unsigned SelfEdges = 0;
  R.TransformedDDG.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Src == E.Dst && E.Kind == DepKind::MemOutput) {
      ++SelfEdges;
      EXPECT_EQ(TL.op(E.Src).ReplicaOf, StoreId);
    }
  });
  EXPECT_EQ(SelfEdges, 4u) << "one self edge per instance";
}
