#!/bin/sh
#===- tests/experiment_remote_e2e.sh - run-by-name round trip -------------===#
#
# Exercises the run_experiment wire path end to end:
#
#   1. start cvliw-sweepd on an ephemeral port,
#   2. run `cvliw-bench <name> --remote` against it — the client sends
#      the experiment *name* (an O(1) frame, no serialized grid), the
#      daemon expands the registered grid server-side — and assert the
#      table is byte-identical to the golden capture,
#   3. send an unknown name over the wire (cvliw-sweep-client forwards
#      it unvalidated) and assert the daemon answers with an error and
#      keeps serving,
#   4. re-run the real experiment (now cache-warm) and golden-check it
#      again. (sweep_service_e2e covers clean shutdown.)
#
# Usage: experiment_remote_e2e.sh <cvliw-sweepd> <cvliw-bench>
#                                 <cvliw-sweep-client>
#                                 <experiment-name> <golden-file>
#
#===----------------------------------------------------------------------===#
set -u

sweepd="$1"
bench="$2"
client="$3"
name="$4"
golden="$5"
here=$(dirname "$0")

workdir=$(mktemp -d)
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

"$sweepd" --port 0 --port-file "$workdir/port" --threads 2 \
  > "$workdir/sweepd.log" 2>&1 &
daemon_pid=$!

# The daemon binds port 0 (kernel-assigned) and publishes the bound
# port by renaming a temp file into place, so a non-empty port file is
# always complete — no fixed-port race, no partial read.
i=0
while [ ! -s "$workdir/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ] || ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon did not become ready" >&2
    cat "$workdir/sweepd.log" >&2
    exit 1
  fi
  sleep 0.1
done
hostport="127.0.0.1:$(cat "$workdir/port")"
echo "daemon up at $hostport"

# Step 2: by-name remote run against the golden capture.
sh "$here/golden/check_driver.sh" "$bench" "$golden" \
   "$name" --remote "$hostport" || exit 1
echo "OK: $name served by name matches its golden capture"

# Step 3: an unknown name over the wire must earn an error response
# and leave the daemon serving.
if "$client" "$hostport" experiment no_such_experiment \
     > "$workdir/unknown.log" 2>&1; then
  echo "FAIL: unknown experiment name unexpectedly succeeded" >&2
  exit 1
fi
grep -q "unknown experiment" "$workdir/unknown.log" || {
  echo "FAIL: expected the daemon's unknown-experiment error, got:" >&2
  cat "$workdir/unknown.log" >&2
  exit 1
}
if ! kill -0 "$daemon_pid" 2>/dev/null; then
  echo "FAIL: daemon died on an unknown experiment name" >&2
  cat "$workdir/sweepd.log" >&2
  exit 1
fi
"$client" "$hostport" ping > /dev/null || {
  echo "FAIL: daemon stopped answering after an unknown name" >&2
  exit 1
}
echo "OK: unknown name rejected over the wire, daemon still serving"

# Step 4: the cache-warm re-run must still match the capture.
sh "$here/golden/check_driver.sh" "$bench" "$golden" \
   "$name" --remote "$hostport" || exit 1
echo "OK: cache-warm re-run matches its golden capture"
