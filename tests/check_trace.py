#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file written by support/Trace.

The contract checked here is what chrome://tracing and Perfetto need to
load the file at all, plus the cvliw-specific shape:

  * the file parses as one JSON array of event objects,
  * every event is a complete span ("X") or thread metadata ("M") —
    since no B/E events are ever emitted, begin/end balance holds
    trivially on every track,
  * every span has a name, a category, and non-negative ts/dur,
  * every (pid, tid) with a span also carries a thread_name record.

With --require-cat CAT (repeatable) the file must additionally contain
at least one span of each named category — the e2e test uses this to
prove a daemon trace really carries codec, simulation, scheduling and
socket tracks. Stdlib only; exits non-zero with a message on failure.

Usage: check_trace.py TRACE.json [--require-cat CAT]...
"""

import argparse
import json
import sys


def fail(message):
    print("check_trace: FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file")
    parser.add_argument(
        "--require-cat",
        action="append",
        default=[],
        metavar="CAT",
        help="require at least one span of this category (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace) as stream:
            events = json.load(stream)
    except (OSError, ValueError) as err:
        fail("cannot load %s: %s" % (args.trace, err))

    if not isinstance(events, list):
        fail("top-level JSON is %s, expected an array" % type(events).__name__)

    spans = 0
    categories = {}
    span_tracks = set()
    named_tracks = set()
    for index, event in enumerate(events):
        where = "event %d" % index
        if not isinstance(event, dict):
            fail("%s is not an object" % where)
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") != "thread_name":
                fail("%s: metadata other than thread_name" % where)
            if not event.get("args", {}).get("name"):
                fail("%s: thread_name with no name" % where)
            named_tracks.add((event.get("pid"), event.get("tid")))
            continue
        if phase != "X":
            fail("%s: unexpected phase %r (only X/M are emitted, so "
                 "B/E balance cannot break)" % (where, phase))
        spans += 1
        if not event.get("name"):
            fail("%s: span with no name" % where)
        cat = event.get("cat")
        if not cat:
            fail("%s: span with no category" % where)
        categories[cat] = categories.get(cat, 0) + 1
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, int) or value < 0:
                fail("%s: %s is %r, expected a non-negative integer"
                     % (where, key, value))
        span_tracks.add((event.get("pid"), event.get("tid")))

    for track in sorted(span_tracks - named_tracks):
        fail("track pid=%s tid=%s has spans but no thread_name" % track)

    missing = [cat for cat in args.require_cat if cat not in categories]
    if missing:
        fail("required categories absent: %s (present: %s)"
             % (", ".join(missing),
                ", ".join(sorted(categories)) or "none"))

    print("check_trace: OK: %d spans on %d tracks (%s)"
          % (spans, len(span_tracks),
             ", ".join("%s=%d" % kv for kv in sorted(categories.items()))
             or "no spans"))


if __name__ == "__main__":
    main()
