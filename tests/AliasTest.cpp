//===- tests/AliasTest.cpp - memory disambiguation tests ------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/CodeSpecialization.h"
#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

/// Loop skeleton with two streams and one load + one store.
struct TwoStreamLoop {
  Loop L{"alias"};
  unsigned LoadOp = 0, StoreOp = 0;

  TwoStreamLoop(AddressExpr A, AddressExpr B, MemObject ObjA,
                MemObject ObjB, bool TwoObjects) {
    L.addObject(ObjA);
    if (TwoObjects)
      L.addObject(ObjB);
    unsigned SA = L.addStream(A);
    unsigned SB = L.addStream(B);
    LoadOp = L.addOp(Operation::load(1, SA));
    StoreOp = L.addOp(Operation::store(1, SB));
  }
};

MemObject object(uint64_t Base, uint64_t Size,
                 unsigned Group = UniqueAliasGroup) {
  MemObject O;
  O.Name = "o";
  O.BaseAddr = Base;
  O.SizeBytes = Size;
  O.AliasGroup = Group;
  return O;
}

} // namespace

TEST(Disambiguator, DistinctObjectsNoAlias) {
  TwoStreamLoop T(AddressExpr::affine(0, 0, 16, 4),
                  AddressExpr::affine(1, 0, 16, 4), object(0, 1024),
                  object(0x10000, 1024), /*TwoObjects=*/true);
  MemoryDisambiguator D(T.L);
  EXPECT_EQ(D.query(0, 1).Result, AliasResult::NoAlias);
}

TEST(Disambiguator, SameAliasGroupMayAlias) {
  TwoStreamLoop T(AddressExpr::affine(0, 0, 16, 4),
                  AddressExpr::affine(1, 0, 16, 4), object(0, 1024, 5),
                  object(0x10000, 1024, 5), /*TwoObjects=*/true);
  MemoryDisambiguator D(T.L);
  AliasQueryAnswer A = D.query(0, 1);
  EXPECT_EQ(A.Result, AliasResult::MayAlias);
  EXPECT_TRUE(A.RuntimeDisambiguable)
      << "disjoint ranges never collide; a run-time check can prove it";
}

TEST(Disambiguator, SameStrideCongruentOffsetsMustAlias) {
  // B touches A's iteration-i address two iterations later.
  TwoStreamLoop T(AddressExpr::affine(0, 32, 16, 4),
                  AddressExpr::affine(0, 0, 16, 4), object(0, 4096),
                  object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D(T.L);
  AliasQueryAnswer A = D.query(0, 1);
  EXPECT_EQ(A.Result, AliasResult::MustAlias);
  EXPECT_EQ(A.IterDelta, 2) << "B(i+2) == A(i) when B lags by 32 bytes";
}

TEST(Disambiguator, SameStrideDisjointLanesNoAlias) {
  // Offsets 0 and 8 with stride 16 and 4-byte accesses never overlap.
  TwoStreamLoop T(AddressExpr::affine(0, 0, 16, 4),
                  AddressExpr::affine(0, 8, 16, 4), object(0, 4096),
                  object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D(T.L);
  EXPECT_EQ(D.query(0, 1).Result, AliasResult::NoAlias);
}

TEST(Disambiguator, SameStridePartialOverlapMayAlias) {
  // Offset delta 2 with 4-byte accesses: windows overlap between lanes.
  TwoStreamLoop T(AddressExpr::affine(0, 0, 16, 4),
                  AddressExpr::affine(0, 2, 16, 4), object(0, 4096),
                  object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D(T.L);
  AliasQueryAnswer A = D.query(0, 1);
  EXPECT_EQ(A.Result, AliasResult::MayAlias);
  EXPECT_FALSE(A.RuntimeDisambiguable) << "they really do overlap";
}

TEST(Disambiguator, LoopInvariantAddresses) {
  TwoStreamLoop Same(AddressExpr::affine(0, 8, 0, 4),
                     AddressExpr::affine(0, 8, 0, 4), object(0, 64),
                     object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D1(Same.L);
  AliasQueryAnswer A = D1.query(0, 1);
  EXPECT_EQ(A.Result, AliasResult::MustAlias);
  EXPECT_EQ(A.IterDelta, 0);

  TwoStreamLoop Apart(AddressExpr::affine(0, 8, 0, 4),
                      AddressExpr::affine(0, 16, 0, 4), object(0, 64),
                      object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D2(Apart.L);
  EXPECT_EQ(D2.query(0, 1).Result, AliasResult::NoAlias);
}

TEST(Disambiguator, GatherAlwaysMayAlias) {
  TwoStreamLoop T(AddressExpr::gather(0, 4, 1),
                  AddressExpr::gather(0, 4, 2), object(0, 256),
                  object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D(T.L);
  AliasQueryAnswer A = D.query(0, 1);
  EXPECT_EQ(A.Result, AliasResult::MayAlias);
  EXPECT_FALSE(A.RuntimeDisambiguable)
      << "gathers over one small object collide at run time";
}

TEST(Disambiguator, DifferentStridesSameObjectMayAlias) {
  TwoStreamLoop T(AddressExpr::affine(0, 0, 16, 4),
                  AddressExpr::affine(0, 0, 12, 4), object(0, 4096),
                  object(0, 0), /*TwoObjects=*/false);
  MemoryDisambiguator D(T.L);
  EXPECT_EQ(D.query(0, 1).Result, AliasResult::MayAlias);
}

//===----------------------------------------------------------------------===//
// Edge construction
//===----------------------------------------------------------------------===//

namespace {

/// Builds a loop with N members gathering over a shared object:
/// loads first, then stores, in program order.
Loop gatherClique(unsigned Loads, unsigned Stores) {
  Loop L("clique");
  unsigned Obj = L.addObject(object(0, 256));
  for (unsigned I = 0; I != Loads; ++I)
    L.addOp(
        Operation::load(I + 1, L.addStream(AddressExpr::gather(Obj, 4, I))));
  for (unsigned I = 0; I != Stores; ++I)
    L.addOp(Operation::store(
        1, L.addStream(AddressExpr::gather(Obj, 4, 100 + I))));
  return L;
}

} // namespace

TEST(MemoryEdges, KindsAreCorrect) {
  Loop L = gatherClique(1, 2);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  // Load(0) -> store(1): MA; store(1) -> store(2): MO; store -> load at
  // distance 1: MF.
  EXPECT_TRUE(G.hasEdge(0, 1, DepKind::MemAnti, 0));
  EXPECT_TRUE(G.hasEdge(1, 2, DepKind::MemOutput, 0));
  bool AnyMf = false;
  G.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Kind == DepKind::MemFlow && E.Distance == 1)
      AnyMf = true;
  });
  EXPECT_TRUE(AnyMf);
}

TEST(MemoryEdges, LoadsNeverDependOnLoads) {
  Loop L = gatherClique(4, 1);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  G.forEachEdge([&](unsigned, const DepEdge &E) {
    if (!isMemoryDep(E.Kind))
      return;
    EXPECT_FALSE(L.op(E.Src).isLoad() && L.op(E.Dst).isLoad());
  });
}

TEST(MemoryEdges, TransitiveReductionKeepsEdgesLinear) {
  Loop Small = gatherClique(8, 4);
  Loop Big = gatherClique(16, 8);
  DDG GSmall = buildRegisterFlowDDG(Small);
  DDG GBig = buildRegisterFlowDDG(Big);
  MemoryDisambiguator DSmall(Small), DBig(Big);
  unsigned ESmall = DSmall.addMemoryEdges(GSmall);
  unsigned EBig = DBig.addMemoryEdges(GBig);
  // Doubling the clique should not quadruple the edges.
  EXPECT_LT(EBig, 3 * ESmall) << "pruning keeps growth ~linear";
}

TEST(MemoryEdges, SerializationPathProperty) {
  // The load must reach every store through memory edges, and every
  // store must reach the next iteration's load: the conservative
  // serialization survives the transitive reduction.
  Loop L = gatherClique(3, 3);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  for (unsigned LoadId = 0; LoadId != 3; ++LoadId)
    for (unsigned StoreId = 3; StoreId != 6; ++StoreId) {
      EXPECT_TRUE(G.reaches(LoadId, StoreId))
          << "load " << LoadId << " unordered with store " << StoreId;
      EXPECT_TRUE(G.reaches(StoreId, LoadId))
          << "store " << StoreId << " unordered with next-iter load "
          << LoadId;
    }
}

TEST(MemoryEdges, SelfOutputDependenceForGatherStores) {
  Loop L("self");
  unsigned Obj = L.addObject(object(0, 256));
  unsigned S = L.addStream(AddressExpr::gather(Obj, 4, 1));
  unsigned StoreId = L.addOp(Operation::store(NoReg, S));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  EXPECT_TRUE(G.hasEdge(StoreId, StoreId, DepKind::MemOutput, 1))
      << "a gathering store may revisit its own address";
}

TEST(MemoryEdges, NoSelfEdgeForStridedStores) {
  Loop L("strided");
  unsigned Obj = L.addObject(object(0, 4096));
  unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
  unsigned StoreId = L.addOp(Operation::store(NoReg, S));
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  EXPECT_FALSE(G.hasEdge(StoreId, StoreId, DepKind::MemOutput, 1));
}

TEST(MemoryEdges, FarMustAliasDropped) {
  // Must-alias at distance 20 exceeds MaxDependenceDistance: no edge.
  TwoStreamLoop T(AddressExpr::affine(0, 320, 16, 4),
                  AddressExpr::affine(0, 0, 16, 4), object(0, 65536),
                  object(0, 0), /*TwoObjects=*/false);
  DDG G = buildRegisterFlowDDG(T.L);
  MemoryDisambiguator D(T.L);
  unsigned Added = D.addMemoryEdges(G);
  EXPECT_EQ(Added, 0u);
}

//===----------------------------------------------------------------------===//
// Code specialization (§6)
//===----------------------------------------------------------------------===//

TEST(CodeSpecialization, RemovesOnlyDisambiguableEdges) {
  // One disambiguable pair (distinct objects, shared group) and one
  // durable pair (gathers over one object).
  Loop L("spec");
  unsigned Shared = L.addObject(object(0, 256, 3));
  unsigned ArrA = L.addObject(object(0x10000, 1024, 3));
  unsigned ArrB = L.addObject(object(0x20000, 1024, 3));
  unsigned G1 = L.addStream(AddressExpr::gather(Shared, 4, 1));
  unsigned G2 = L.addStream(AddressExpr::gather(Shared, 4, 2));
  unsigned A1 = L.addStream(AddressExpr::affine(ArrA, 0, 16, 4));
  unsigned A2 = L.addStream(AddressExpr::affine(ArrB, 0, 16, 4));
  L.addOp(Operation::load(1, G1));
  L.addOp(Operation::load(2, A1));
  L.addOp(Operation::store(1, G2));
  L.addOp(Operation::store(2, A2));

  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  size_t Before = G.memoryEdges().size();
  SpecializationResult R = applyCodeSpecialization(G);
  EXPECT_GT(R.EdgesRemoved, 0u);
  EXPECT_GT(R.EdgesRemaining, 0u) << "gather core must survive";
  EXPECT_EQ(G.memoryEdges().size(), Before - R.EdgesRemoved);

  // The surviving edges still serialize the truly aliasing pair.
  EXPECT_TRUE(G.reaches(0, 2));
  EXPECT_TRUE(G.reaches(2, 0));
}

TEST(CodeSpecialization, SerializationSurvivesForDurablePairs) {
  // Mixed chain: gather core + group extension. After specialization the
  // gather members must remain mutually ordered even though the group
  // edges disappeared (the durable-witness rule in the disambiguator).
  Loop L("mixed");
  unsigned Shared = L.addObject(object(0, 256, 9));
  std::vector<unsigned> GatherOps;
  for (unsigned I = 0; I != 3; ++I) {
    unsigned Arr =
        L.addObject(object(0x10000 * (I + 1), 1024, 9));
    L.addOp(Operation::load(
        I * 2 + 1, L.addStream(AddressExpr::affine(Arr, 0, 16, 4))));
    GatherOps.push_back(L.addOp(Operation::store(
        I * 2 + 1, L.addStream(AddressExpr::gather(Shared, 4, I)))));
  }
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  applyCodeSpecialization(G);
  for (unsigned A : GatherOps)
    for (unsigned B : GatherOps)
      EXPECT_TRUE(G.reaches(A, B) || G.reaches(B, A))
          << "stores " << A << " and " << B
          << " lost their serialization after specialization";
}
