//===- tests/SchedulerTest.cpp - clustered modulo scheduler ---------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/profile/ClusterProfiler.h"
#include "cvliw/sched/DDGTransform.h"
#include "cvliw/sched/MemoryChains.h"
#include "cvliw/sched/ModuloScheduler.h"
#include "cvliw/workloads/KernelBuilder.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace cvliw;

namespace {

struct Compiled {
  Loop L;
  DDG G;
  ClusterProfile Profile;
  std::optional<MemoryChains> Chains;
  std::optional<Schedule> Sched;
};

LoopSpec chainySpec(uint64_t Seed) {
  LoopSpec Spec;
  Spec.Name = "sched_test";
  Spec.Chains = {ChainSpec{1, 1, 3, 1, true}};
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.ArithPerLoad = 2;
  Spec.ProfileTrip = 300;
  Spec.ExecTrip = 600;
  Spec.SeedBase = Seed;
  return Spec;
}

Compiled compile(const LoopSpec &Spec, CoherencePolicy Policy,
                 ClusterHeuristic Heuristic,
                 MachineConfig Machine = MachineConfig::baseline()) {
  Compiled Out{buildLoop(Spec, Machine), DDG(), ClusterProfile(), {}, {}};
  Out.G = buildRegisterFlowDDG(Out.L);
  MemoryDisambiguator D(Out.L);
  D.addMemoryEdges(Out.G);
  if (Policy == CoherencePolicy::DDGT) {
    DDGTResult T = applyDDGT(Out.L, Out.G, Machine);
    Out.L = std::move(T.TransformedLoop);
    Out.G = std::move(T.TransformedDDG);
  }
  Out.Profile = profileLoop(Out.L, Machine);
  Out.Chains.emplace(Out.L, Out.G);
  SchedulerOptions Opts;
  Opts.Policy = Policy;
  Opts.Heuristic = Heuristic;
  ModuloScheduler Scheduler(Out.L, Out.G, Machine, Out.Profile, Opts,
                            &*Out.Chains);
  Out.Sched = Scheduler.run();
  return Out;
}

using PolicyHeuristic = std::tuple<CoherencePolicy, ClusterHeuristic>;

class AllSchemes : public ::testing::TestWithParam<PolicyHeuristic> {};

} // namespace

TEST_P(AllSchemes, ProducesLegalSchedule) {
  auto [Policy, Heuristic] = GetParam();
  Compiled C = compile(chainySpec(11), Policy, Heuristic);
  ASSERT_TRUE(C.Sched.has_value());
  EXPECT_EQ(checkSchedule(C.L, C.G, MachineConfig::baseline(), *C.Sched),
            "");
}

TEST_P(AllSchemes, IIRespectsLowerBounds) {
  auto [Policy, Heuristic] = GetParam();
  Compiled C = compile(chainySpec(12), Policy, Heuristic);
  ASSERT_TRUE(C.Sched.has_value());
  EXPECT_GE(C.Sched->II, C.Sched->ResMII);
  EXPECT_GE(C.Sched->II, C.Sched->RecMII);
  EXPECT_LE(C.Sched->II, 8 * std::max(C.Sched->ResMII, C.Sched->RecMII))
      << "II should stay within a small factor of the lower bound";
}

TEST_P(AllSchemes, EveryOpPlacedOnValidCluster) {
  auto [Policy, Heuristic] = GetParam();
  Compiled C = compile(chainySpec(13), Policy, Heuristic);
  ASSERT_TRUE(C.Sched.has_value());
  EXPECT_EQ(C.Sched->Ops.size(), C.L.numOps());
  for (const ScheduledOp &Op : C.Sched->Ops)
    EXPECT_LT(Op.Cluster, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByHeuristic, AllSchemes,
    ::testing::Combine(::testing::Values(CoherencePolicy::Baseline,
                                         CoherencePolicy::MDC,
                                         CoherencePolicy::DDGT),
                       ::testing::Values(ClusterHeuristic::PrefClus,
                                         ClusterHeuristic::MinComs)),
    [](const ::testing::TestParamInfo<PolicyHeuristic> &Info) {
      return std::string(coherencePolicyName(std::get<0>(Info.param))) +
             "_" + clusterHeuristicName(std::get<1>(Info.param));
    });

TEST(Scheduler, MdcPinsChainsToOneCluster) {
  for (ClusterHeuristic H :
       {ClusterHeuristic::PrefClus, ClusterHeuristic::MinComs}) {
    Compiled C = compile(chainySpec(21), CoherencePolicy::MDC, H);
    ASSERT_TRUE(C.Sched.has_value());
    std::map<unsigned, std::set<unsigned>> ClustersOfChain;
    for (unsigned Id = 0; Id != C.L.numOps(); ++Id) {
      unsigned Chain = C.Chains->chainOf(Id);
      if (Chain != NoChain)
        ClustersOfChain[Chain].insert(C.Sched->Ops[Id].Cluster);
    }
    EXPECT_FALSE(ClustersOfChain.empty());
    for (const auto &[Chain, Clusters] : ClustersOfChain)
      EXPECT_EQ(Clusters.size(), 1u)
          << "chain " << Chain << " spans clusters under "
          << clusterHeuristicName(H);
  }
}

TEST(Scheduler, MdcPrefClusUsesChainAveragePreference) {
  Compiled C = compile(chainySpec(22), CoherencePolicy::MDC,
                       ClusterHeuristic::PrefClus);
  ASSERT_TRUE(C.Sched.has_value());
  for (unsigned Id = 0; Id != C.L.numOps(); ++Id) {
    unsigned Chain = C.Chains->chainOf(Id);
    if (Chain == NoChain)
      continue;
    unsigned Expected =
        C.Profile.preferredClusterOfSet(C.Chains->members(Chain));
    EXPECT_EQ(C.Sched->Ops[Id].Cluster, Expected);
  }
}

TEST(Scheduler, DdgtInstancesCoverAllClusters) {
  Compiled C = compile(chainySpec(23), CoherencePolicy::DDGT,
                       ClusterHeuristic::PrefClus);
  ASSERT_TRUE(C.Sched.has_value());
  std::map<unsigned, std::set<unsigned>> InstanceClusters;
  for (unsigned Id = 0; Id != C.L.numOps(); ++Id) {
    const Operation &O = C.L.op(Id);
    if (O.isStore() && O.isReplica())
      InstanceClusters[O.ReplicaOf].insert(C.Sched->Ops[Id].Cluster);
  }
  EXPECT_FALSE(InstanceClusters.empty());
  for (const auto &[Original, Clusters] : InstanceClusters)
    EXPECT_EQ(Clusters.size(), 4u)
        << "instances of store " << Original
        << " must land in four distinct clusters";
}

TEST(Scheduler, PrefClusPutsFreeMemoryOpsInPreferredCluster) {
  Compiled C = compile(chainySpec(24), CoherencePolicy::Baseline,
                       ClusterHeuristic::PrefClus);
  ASSERT_TRUE(C.Sched.has_value());
  for (unsigned Id = 0; Id != C.L.numOps(); ++Id) {
    if (C.L.op(Id).isMemory()) {
      EXPECT_EQ(C.Sched->Ops[Id].Cluster, C.Profile.preferredCluster(Id));
    }
  }
}

TEST(Scheduler, CopiesCoverEveryCrossClusterValue) {
  Compiled C = compile(chainySpec(25), CoherencePolicy::DDGT,
                       ClusterHeuristic::PrefClus);
  ASSERT_TRUE(C.Sched.has_value());
  C.G.forEachEdge([&](unsigned, const DepEdge &E) {
    if (E.Kind != DepKind::RegFlow || E.Src == E.Dst)
      return;
    unsigned From = C.Sched->Ops[E.Src].Cluster;
    unsigned To = C.Sched->Ops[E.Dst].Cluster;
    if (From == To)
      return;
    bool Found = false;
    for (const CopyOp &Copy : C.Sched->Copies)
      Found |= Copy.ProducerOp == E.Src && Copy.ToCluster == To &&
               Copy.FromCluster == From;
    EXPECT_TRUE(Found) << "no copy for value " << E.Src << " -> cluster "
                       << To;
  });
}

TEST(Scheduler, AssignedLatenciesAreRecognizedAccessLatencies) {
  MachineConfig Machine = MachineConfig::baseline();
  Compiled C = compile(chainySpec(26), CoherencePolicy::Baseline,
                       ClusterHeuristic::MinComs);
  ASSERT_TRUE(C.Sched.has_value());
  std::set<unsigned> Valid = {
      Machine.nominalLatency(AccessType::LocalHit),
      Machine.nominalLatency(AccessType::RemoteHit),
      Machine.nominalLatency(AccessType::LocalMiss),
      Machine.nominalLatency(AccessType::RemoteMiss)};
  for (unsigned Id = 0; Id != C.L.numOps(); ++Id) {
    if (C.L.op(Id).isLoad()) {
      EXPECT_TRUE(Valid.count(C.Sched->Ops[Id].AssumedLatency))
          << "load " << Id << " assumed "
          << C.Sched->Ops[Id].AssumedLatency;
    }
  }
}

TEST(Scheduler, LatencyAssignmentRaisesConsumerDistance) {
  // With latency assignment on, independent loads should be scheduled
  // with more than the local-hit latency to their consumers.
  LoopSpec Spec;
  Spec.Name = "lat";
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.ArithPerLoad = 1;
  Spec.SeedBase = 31;
  MachineConfig Machine = MachineConfig::baseline();
  Loop L = buildLoop(Spec, Machine);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  ClusterProfile P = profileLoop(L, Machine);

  SchedulerOptions On;
  On.AssignLatencies = true;
  ModuloScheduler SOn(L, G, Machine, P, On);
  auto SchedOn = SOn.run();
  ASSERT_TRUE(SchedOn.has_value());

  SchedulerOptions Off;
  Off.AssignLatencies = false;
  ModuloScheduler SOff(L, G, Machine, P, Off);
  auto SchedOff = SOff.run();
  ASSERT_TRUE(SchedOff.has_value());

  unsigned MaxOn = 0, MaxOff = 0;
  for (unsigned Id = 0; Id != L.numOps(); ++Id) {
    if (!L.op(Id).isLoad())
      continue;
    MaxOn = std::max(MaxOn, SchedOn->Ops[Id].AssumedLatency);
    MaxOff = std::max(MaxOff, SchedOff->Ops[Id].AssumedLatency);
  }
  EXPECT_GT(MaxOn, MaxOff);
  EXPECT_EQ(MaxOff, 1u);
}

TEST(Scheduler, MinComsPostPassNeverLosesLocalAccesses) {
  // The virtual->physical permutation maximizes profiled local accesses;
  // identity is always a candidate, so the result can only be >= the
  // unpermuted score. We verify by recomputing the score.
  Compiled C = compile(chainySpec(27), CoherencePolicy::Baseline,
                       ClusterHeuristic::MinComs);
  ASSERT_TRUE(C.Sched.has_value());
  // The score of the final assignment must be maximal over all
  // permutations of it.
  std::vector<unsigned> Perm{0, 1, 2, 3};
  auto Score = [&](const std::vector<unsigned> &P) {
    uint64_t S = 0;
    for (unsigned Id = 0; Id != C.L.numOps(); ++Id)
      if (C.L.op(Id).isMemory())
        S += C.Profile.histogram(Id)[P[C.Sched->Ops[Id].Cluster]];
    return S;
  };
  uint64_t Identity = Score(Perm);
  std::sort(Perm.begin(), Perm.end());
  do
    EXPECT_LE(Score(Perm), Identity);
  while (std::next_permutation(Perm.begin(), Perm.end()));
}

TEST(Scheduler, DeterministicAcrossRuns) {
  Compiled A = compile(chainySpec(28), CoherencePolicy::MDC,
                       ClusterHeuristic::PrefClus);
  Compiled B = compile(chainySpec(28), CoherencePolicy::MDC,
                       ClusterHeuristic::PrefClus);
  ASSERT_TRUE(A.Sched && B.Sched);
  EXPECT_EQ(A.Sched->II, B.Sched->II);
  for (unsigned Id = 0; Id != A.L.numOps(); ++Id) {
    EXPECT_EQ(A.Sched->Ops[Id].Cycle, B.Sched->Ops[Id].Cycle);
    EXPECT_EQ(A.Sched->Ops[Id].Cluster, B.Sched->Ops[Id].Cluster);
  }
}

TEST(Scheduler, NobalRegisterBusesRaiseDdgtII) {
  // DDGT leans on register buses (operand copies for replicas); taking
  // buses away should never make its II better.
  Compiled Fast = compile(chainySpec(29), CoherencePolicy::DDGT,
                          ClusterHeuristic::PrefClus,
                          MachineConfig::baseline());
  Compiled Slow = compile(chainySpec(29), CoherencePolicy::DDGT,
                          ClusterHeuristic::PrefClus,
                          MachineConfig::nobalMem());
  ASSERT_TRUE(Fast.Sched && Slow.Sched);
  EXPECT_GE(Slow.Sched->II, Fast.Sched->II);
}

TEST(Scheduler, StageCountConsistent) {
  Compiled C = compile(chainySpec(30), CoherencePolicy::Baseline,
                       ClusterHeuristic::MinComs);
  ASSERT_TRUE(C.Sched.has_value());
  EXPECT_EQ(C.Sched->stageCount(),
            (C.Sched->Length + C.Sched->II - 1) / C.Sched->II);
  EXPECT_GE(C.Sched->stageCount(), 1u);
}

TEST(Scheduler, SwingOrderingProducesLegalSchedules) {
  for (CoherencePolicy Policy :
       {CoherencePolicy::Baseline, CoherencePolicy::MDC,
        CoherencePolicy::DDGT}) {
    LoopSpec Spec = chainySpec(41);
    MachineConfig Machine = MachineConfig::baseline();
    Loop L = buildLoop(Spec, Machine);
    DDG G = buildRegisterFlowDDG(L);
    MemoryDisambiguator D(L);
    D.addMemoryEdges(G);
    Loop *SchedLoop = &L;
    DDG *SchedGraph = &G;
    DDGTResult T;
    if (Policy == CoherencePolicy::DDGT) {
      T = applyDDGT(L, G, Machine);
      SchedLoop = &T.TransformedLoop;
      SchedGraph = &T.TransformedDDG;
    }
    ClusterProfile P = profileLoop(*SchedLoop, Machine);
    MemoryChains Chains(*SchedLoop, *SchedGraph);
    SchedulerOptions Opts;
    Opts.Policy = Policy;
    Opts.Ordering = SchedulerOrdering::Swing;
    ModuloScheduler Scheduler(*SchedLoop, *SchedGraph, Machine, P, Opts,
                              &Chains);
    auto S = Scheduler.run();
    ASSERT_TRUE(S.has_value()) << coherencePolicyName(Policy);
    EXPECT_EQ(checkSchedule(*SchedLoop, *SchedGraph, Machine, *S), "")
        << coherencePolicyName(Policy);
  }
}

TEST(Scheduler, OrderingNames) {
  EXPECT_STREQ(schedulerOrderingName(SchedulerOrdering::HeightBased),
               "height");
  EXPECT_STREQ(schedulerOrderingName(SchedulerOrdering::Swing), "swing");
}
