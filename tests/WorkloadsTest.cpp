//===- tests/WorkloadsTest.cpp - synthetic suite tests --------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/sched/MemoryChains.h"
#include "cvliw/workloads/Suite.h"

#include <gtest/gtest.h>

#include <set>

using namespace cvliw;

namespace {

class EverySuiteBenchmark
    : public ::testing::TestWithParam<BenchmarkSpec> {};

} // namespace

TEST_P(EverySuiteBenchmark, LoopsBuildAndVerify) {
  const BenchmarkSpec &Bench = GetParam();
  MachineConfig Machine = MachineConfig::baseline();
  Machine.InterleaveBytes = Bench.InterleaveBytes;
  for (const LoopSpec &Spec : Bench.Loops) {
    Loop L = buildLoop(Spec, Machine);
    EXPECT_GT(L.numOps(), 3u);
    EXPECT_GT(L.numMemoryOps(), 0u);
    DDG G = buildRegisterFlowDDG(L);
    MemoryDisambiguator D(L);
    D.addMemoryEdges(G);
    EXPECT_TRUE(verifyDDG(L, G)) << Spec.Name;
  }
}

TEST_P(EverySuiteBenchmark, ChainSizesMatchSpecs) {
  const BenchmarkSpec &Bench = GetParam();
  MachineConfig Machine = MachineConfig::baseline();
  Machine.InterleaveBytes = Bench.InterleaveBytes;
  for (const LoopSpec &Spec : Bench.Loops) {
    Loop L = buildLoop(Spec, Machine);
    DDG G = buildRegisterFlowDDG(L);
    MemoryDisambiguator D(L);
    D.addMemoryEdges(G);
    MemoryChains Chains(L, G);
    size_t Expected = 0;
    for (const ChainSpec &Chain : Spec.Chains)
      Expected = std::max<size_t>(Expected, Chain.size());
    EXPECT_EQ(Chains.biggestChainSize(), Expected) << Spec.Name;
  }
}

TEST_P(EverySuiteBenchmark, StreamsStayInsideObjects) {
  const BenchmarkSpec &Bench = GetParam();
  MachineConfig Machine = MachineConfig::baseline();
  Machine.InterleaveBytes = Bench.InterleaveBytes;
  for (const LoopSpec &Spec : Bench.Loops) {
    Loop L = buildLoop(Spec, Machine);
    for (unsigned Id = 0; Id != L.numOps(); ++Id) {
      if (!L.op(Id).isMemory())
        continue;
      const AddressExpr &E = L.stream(L.op(Id).StreamId);
      const MemObject &Obj = L.object(E.ObjectId);
      for (uint64_t I = 0; I != 100; ++I) {
        uint64_t A = L.addressOf(Id, I * 7, L.ExecSeed);
        EXPECT_GE(A, Obj.BaseAddr);
        EXPECT_LE(A + E.AccessBytes, Obj.BaseAddr + Obj.SizeBytes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mediabench, EverySuiteBenchmark,
    ::testing::ValuesIn(mediabenchSuite()),
    [](const ::testing::TestParamInfo<BenchmarkSpec> &Info) {
      return Info.param.Name;
    });

TEST(Suite, FourteenBenchmarksThirteenEvaluated) {
  EXPECT_EQ(mediabenchSuite().size(), 14u);
  EXPECT_EQ(evaluationSuite().size(), 13u);
  auto Suite = mediabenchSuite();
  EXPECT_NE(findBenchmark(Suite, "epicenc"), nullptr);
  EXPECT_FALSE(findBenchmark(Suite, "epicenc")->InEvaluation);
  EXPECT_EQ(findBenchmark(Suite, "nonexistent"), nullptr);
}

TEST(Suite, InterleaveFactorsFollowTable1) {
  auto Suite = mediabenchSuite();
  // 4-byte interleave: epic*, jpeg*, mpeg2dec, pgp*, rasta.
  for (const char *Name :
       {"epicdec", "epicenc", "jpegdec", "jpegenc", "mpeg2dec", "pgpdec",
        "pgpenc", "rasta"})
    EXPECT_EQ(findBenchmark(Suite, Name)->InterleaveBytes, 4u) << Name;
  // 2-byte interleave: g721*, gsm*, pegwit*.
  for (const char *Name : {"g721dec", "g721enc", "gsmdec", "gsmenc",
                           "pegwitdec", "pegwitenc"})
    EXPECT_EQ(findBenchmark(Suite, Name)->InterleaveBytes, 2u) << Name;
}

TEST(Suite, G721HasNoChains) {
  auto Suite = mediabenchSuite();
  for (const char *Name : {"g721dec", "g721enc"})
    for (const LoopSpec &Spec : findBenchmark(Suite, Name)->Loops)
      EXPECT_TRUE(Spec.Chains.empty()) << "Table 3: CMR = CAR = 0";
}

TEST(Suite, DistinctSeedsAcrossLoops) {
  std::set<uint64_t> Seeds;
  for (const BenchmarkSpec &Bench : mediabenchSuite())
    for (const LoopSpec &Spec : Bench.Loops)
      EXPECT_TRUE(Seeds.insert(Spec.SeedBase).second)
          << "duplicate seed in " << Spec.Name;
}

TEST(Suite, ObjectsNeverOverlap) {
  MachineConfig Machine = MachineConfig::baseline();
  for (const BenchmarkSpec &Bench : mediabenchSuite()) {
    for (const LoopSpec &Spec : Bench.Loops) {
      Loop L = buildLoop(Spec, Machine);
      const auto &Objects = L.objects();
      for (size_t I = 0; I != Objects.size(); ++I)
        for (size_t J = I + 1; J != Objects.size(); ++J) {
          bool Disjoint =
              Objects[I].BaseAddr + Objects[I].SizeBytes <=
                  Objects[J].BaseAddr ||
              Objects[J].BaseAddr + Objects[J].SizeBytes <=
                  Objects[I].BaseAddr;
          EXPECT_TRUE(Disjoint)
              << Objects[I].Name << " overlaps " << Objects[J].Name;
        }
    }
  }
}
