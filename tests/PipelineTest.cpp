//===- tests/PipelineTest.cpp - end-to-end experiment pipeline ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/Experiment.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

LoopSpec testSpec(uint64_t Seed) {
  LoopSpec Spec;
  Spec.Name = "pipe";
  Spec.Chains = {ChainSpec{1, 1, 2, 1, true}};
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.ArithPerLoad = 2;
  Spec.ProfileTrip = 300;
  Spec.ExecTrip = 500;
  Spec.SeedBase = Seed;
  return Spec;
}

} // namespace

TEST(Pipeline, RunLoopFillsEverything) {
  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::MDC;
  Config.Heuristic = ClusterHeuristic::PrefClus;
  LoopRunResult R = runLoop(testSpec(1), Config);
  EXPECT_GT(R.II, 0u);
  EXPECT_GT(R.NumOps, 0u);
  EXPECT_GT(R.NumMemOps, 0u);
  EXPECT_EQ(R.BiggestChain, 5u);
  EXPECT_EQ(R.Sim.Iterations, 500u);
  EXPECT_GT(R.Sim.TotalCycles, 0u);
}

TEST(Pipeline, DdgtAddsOpsAndCopies) {
  ExperimentConfig Mdc;
  Mdc.Policy = CoherencePolicy::MDC;
  Mdc.Heuristic = ClusterHeuristic::PrefClus;
  ExperimentConfig Ddgt = Mdc;
  Ddgt.Policy = CoherencePolicy::DDGT;
  LoopRunResult RMdc = runLoop(testSpec(2), Mdc);
  LoopRunResult RDdgt = runLoop(testSpec(2), Ddgt);
  EXPECT_GT(RDdgt.NumOps, RMdc.NumOps) << "store replicas appended";
  EXPECT_GT(RDdgt.NumMemOps, RMdc.NumMemOps);
}

TEST(Pipeline, CoherenceHoldsForBothSolutions) {
  for (CoherencePolicy Policy :
       {CoherencePolicy::MDC, CoherencePolicy::DDGT}) {
    for (ClusterHeuristic H :
         {ClusterHeuristic::PrefClus, ClusterHeuristic::MinComs}) {
      ExperimentConfig Config;
      Config.Policy = Policy;
      Config.Heuristic = H;
      Config.CheckCoherence = true;
      LoopRunResult R = runLoop(testSpec(3), Config);
      EXPECT_EQ(R.Sim.CoherenceViolations, 0u)
          << coherencePolicyName(Policy) << "/" << clusterHeuristicName(H);
    }
  }
}

TEST(Pipeline, BenchmarkAggregation) {
  auto Suite = mediabenchSuite();
  const BenchmarkSpec *Bench = findBenchmark(Suite, "gsmenc");
  ASSERT_NE(Bench, nullptr);
  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::Baseline;
  Config.Heuristic = ClusterHeuristic::MinComs;
  BenchmarkRunResult R = runBenchmark(*Bench, Config);
  EXPECT_EQ(R.Loops.size(), Bench->Loops.size());
  uint64_t Sum = 0;
  for (const LoopRunResult &LoopResult : R.Loops)
    Sum += LoopResult.Sim.TotalCycles;
  EXPECT_EQ(R.totalCycles(), Sum);
  EXPECT_EQ(R.totalCycles(), R.computeCycles() + R.stallCycles());

  FractionAccumulator C = R.mergedClassification();
  double Total = 0;
  for (size_t I = 0; I != 5; ++I)
    Total += C.fraction(I);
  EXPECT_NEAR(Total, 1.0, 1e-9);
}

TEST(Pipeline, InterleaveFactorAppliedPerBenchmark) {
  auto Suite = mediabenchSuite();
  const BenchmarkSpec *Gsm = findBenchmark(Suite, "gsmdec");
  ExperimentConfig Config;
  Config.Machine.InterleaveBytes = 4; // Will be overridden to 2.
  BenchmarkRunResult R = runBenchmark(*Gsm, Config);
  EXPECT_FALSE(R.Loops.empty());
}

TEST(Pipeline, ChainRatiosShrinkUnderSpecialization) {
  auto Suite = mediabenchSuite();
  for (const char *Name : {"epicdec", "pgpdec", "rasta"}) {
    const BenchmarkSpec *Bench = findBenchmark(Suite, Name);
    ChainRatioResult Old = chainRatios(*Bench, false);
    ChainRatioResult New = chainRatios(*Bench, true);
    EXPECT_LT(New.Cmr, Old.Cmr) << Name;
    EXPECT_LT(New.Car, Old.Car) << Name;
    EXPECT_GT(New.Cmr, 0.0)
        << Name << ": the truly aliasing core must survive";
  }
}

TEST(Pipeline, SpecializationPreservesGatherOnlyChains) {
  auto Suite = mediabenchSuite();
  const BenchmarkSpec *Jpeg = findBenchmark(Suite, "jpegdec");
  ChainRatioResult Old = chainRatios(*Jpeg, false);
  ChainRatioResult New = chainRatios(*Jpeg, true);
  EXPECT_DOUBLE_EQ(New.Cmr, Old.Cmr)
      << "jpegdec's chain really aliases; no check can remove it";
}

TEST(Pipeline, CmrCarOrdering) {
  auto Suite = mediabenchSuite();
  for (const BenchmarkSpec &Bench : Suite) {
    ChainRatioResult R = chainRatios(Bench, false);
    EXPECT_LE(R.Car, R.Cmr) << Bench.Name
                            << ": CAR <= CMR by definition (Table 3)";
  }
}

TEST(Pipeline, DeterministicAcrossRuns) {
  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::DDGT;
  Config.Heuristic = ClusterHeuristic::MinComs;
  LoopRunResult A = runLoop(testSpec(4), Config);
  LoopRunResult B = runLoop(testSpec(4), Config);
  EXPECT_EQ(A.Sim.TotalCycles, B.Sim.TotalCycles);
  EXPECT_EQ(A.II, B.II);
  EXPECT_EQ(A.CopiesPerIter, B.CopiesPerIter);
}
