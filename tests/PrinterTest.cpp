//===- tests/PrinterTest.cpp - dump formatting tests ----------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/profile/ClusterProfiler.h"
#include "cvliw/sched/ModuloScheduler.h"
#include "cvliw/sched/SchedulePrinter.h"
#include "cvliw/workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

struct Fixture {
  Loop L;
  DDG G;
  std::optional<Schedule> S;
  MachineConfig Machine = MachineConfig::baseline();

  Fixture() {
    LoopSpec Spec;
    Spec.Name = "printer";
    Spec.Chains = {ChainSpec{1, 1, 1, 0, true}};
    Spec.ConsistentLoads = 2;
    Spec.ConsistentStores = 1;
    Spec.SeedBase = 404;
    L = buildLoop(Spec, Machine);
    G = buildRegisterFlowDDG(L);
    MemoryDisambiguator D(L);
    D.addMemoryEdges(G);
    ClusterProfile P = profileLoop(L, Machine);
    SchedulerOptions Opts;
    ModuloScheduler Scheduler(L, G, Machine, P, Opts);
    S = Scheduler.run();
  }
};

} // namespace

TEST(Printer, LoopListingShowsEveryOp) {
  Fixture F;
  std::string Text = formatLoop(F.L);
  for (unsigned Id = 0; Id != F.L.numOps(); ++Id)
    EXPECT_NE(Text.find("n" + std::to_string(Id) + ":"),
              std::string::npos);
  EXPECT_NE(Text.find("load"), std::string::npos);
  EXPECT_NE(Text.find("store"), std::string::npos);
}

TEST(Printer, DDGListsKindsAndFlags) {
  Fixture F;
  std::string Text = formatDDG(F.L, F.G);
  EXPECT_NE(Text.find("-RF(d=0)->"), std::string::npos);
  EXPECT_NE(Text.find("[may-alias"), std::string::npos);
}

TEST(Printer, DotIsWellFormedGraphviz) {
  Fixture F;
  std::string Dot = formatDot(F.L, F.G);
  EXPECT_EQ(Dot.rfind("digraph ddg {", 0), 0u);
  EXPECT_EQ(Dot.back(), '\n');
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
  // One node statement per op.
  for (unsigned Id = 0; Id != F.L.numOps(); ++Id)
    EXPECT_NE(Dot.find("n" + std::to_string(Id) + " ["),
              std::string::npos);
}

TEST(Printer, ScheduleGridCoversAllOps) {
  Fixture F;
  ASSERT_TRUE(F.S.has_value());
  std::string Text = formatSchedule(F.L, *F.S, F.Machine);
  EXPECT_NE(Text.find("II=" + std::to_string(F.S->II)),
            std::string::npos);
  for (unsigned Id = 0; Id != F.L.numOps(); ++Id)
    EXPECT_NE(Text.find("n" + std::to_string(Id)), std::string::npos);
  EXPECT_NE(Text.find("stage boundary"), std::string::npos);
}
