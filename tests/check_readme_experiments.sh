#!/bin/sh
#===- tests/check_readme_experiments.sh - README/registry agreement -------===#
#
# The README's "experiments by name" table is generated output: the
# block between the experiment-list markers must be byte-identical to
# `cvliw-bench --list-markdown`, so the docs cannot drift from the
# registry. Regenerate with:
#
#   cvliw-bench --list-markdown   (paste between the markers)
#
# Usage: check_readme_experiments.sh <cvliw-bench> <README.md>
#
#===----------------------------------------------------------------------===#
set -u

bench="$1"
readme="$2"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$bench" --list-markdown > "$workdir/expected" || {
  echo "FAIL: cvliw-bench --list-markdown failed" >&2
  exit 1
}

awk '/<!-- experiment-list:begin -->/{inside=1; next}
     /<!-- experiment-list:end -->/{inside=0}
     inside' "$readme" > "$workdir/actual"

if [ ! -s "$workdir/actual" ]; then
  echo "FAIL: no experiment-list markers (or empty block) in $readme" >&2
  exit 1
fi

if ! diff "$workdir/expected" "$workdir/actual" >&2; then
  echo "FAIL: README experiment table differs from" \
       "cvliw-bench --list-markdown" >&2
  exit 1
fi
echo "OK: README experiment table matches the registry"
