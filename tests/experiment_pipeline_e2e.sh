#!/bin/sh
#===- tests/experiment_pipeline_e2e.sh - pipelined + batched round trip ---===#
#
# Exercises the session protocol end to end at full capability:
#
#   1. start cvliw-sweepd on an ephemeral port with row batching ON
#      (--max-batch-rows > 1, the acceptance knob) and weighted
#      sessions allowed,
#   2. run `cvliw-bench --all --remote` — ONE persistent connection
#      pipelines all sixteen run_experiment requests, rows come back in
#      row_batch frames — and assert the full output is byte-identical
#      to the concatenation of every golden capture in registry order,
#   3. assert the run actually used batching (the "rows batched into"
#      summary line) and the daemon counted it in status,
#   4. request shutdown and assert the daemon exits 0 cleanly.
#
# Usage: experiment_pipeline_e2e.sh <cvliw-sweepd> <cvliw-bench>
#                                   <cvliw-sweep-client> <golden-dir>
#
#===----------------------------------------------------------------------===#
set -u

sweepd="$1"
bench="$2"
client="$3"
goldendir="$4"

workdir=$(mktemp -d)
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

"$sweepd" --port 0 --port-file "$workdir/port" --threads 2 \
  --max-batch-rows 8 --max-session-weight 4 \
  > "$workdir/sweepd.log" 2>&1 &
daemon_pid=$!

# The port file appears by rename once the daemon is accepting, so a
# non-empty file always holds the complete port number.
i=0
while [ ! -s "$workdir/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ] || ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon did not become ready" >&2
    cat "$workdir/sweepd.log" >&2
    exit 1
  fi
  sleep 0.1
done
hostport="127.0.0.1:$(cat "$workdir/port")"
echo "daemon up at $hostport (batching enabled)"

# Step 2: all sixteen experiments, one pipelined connection, batched
# row frames — against the concatenated golden captures.
"$bench" --all --remote "$hostport" > "$workdir/all.out" 2> "$workdir/all.err" || {
  echo "FAIL: cvliw-bench --all --remote failed" >&2
  cat "$workdir/all.err" >&2
  exit 1
}
grep -v '^sweep: ' "$workdir/all.out" > "$workdir/all.filtered"

first=1
for name in $("$bench" --list-names); do
  [ "$first" = 1 ] || echo
  first=0
  cat "$goldendir/$name.golden"
done > "$workdir/expected"

if ! diff "$workdir/expected" "$workdir/all.filtered" >&2; then
  echo "FAIL: pipelined --all output differs from the golden captures" >&2
  exit 1
fi
echo "OK: all experiments over one pipelined connection match their goldens"

# Step 3: prove the batched path was actually taken.
grep -q 'rows batched into' "$workdir/all.out" || {
  echo "FAIL: no 'rows batched into' summary — batching never engaged" >&2
  grep '^sweep: ' "$workdir/all.out" >&2
  exit 1
}
"$client" "$hostport" status > "$workdir/status.out" || exit 1
grep -q '^rows batched:         0$' "$workdir/status.out" && {
  echo "FAIL: daemon status counted zero batched rows" >&2
  cat "$workdir/status.out" >&2
  exit 1
}
echo "OK: batching engaged (client summary + daemon status agree)"

# Step 4: clean shutdown.
"$client" "$hostport" shutdown || exit 1
wait "$daemon_pid"
rc=$?
daemon_pid=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: daemon exited with status $rc" >&2
  cat "$workdir/sweepd.log" >&2
  exit 1
fi
echo "OK: pipelined + batched end-to-end (clean shutdown)"
