//===- tests/SuiteCoherenceTest.cpp - whole-suite integration -------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
// The paper's central correctness claim, verified end-to-end over the
// entire evaluation suite: every MDC and DDGT schedule commits aliased
// memory accesses in sequential program order, on every benchmark,
// under both heuristics and on every cache organization.
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/Experiment.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

struct SchemeParam {
  CoherencePolicy Policy;
  ClusterHeuristic Heuristic;
  CacheOrganization Organization;
};

class SuiteCoherence : public ::testing::TestWithParam<SchemeParam> {};

} // namespace

TEST_P(SuiteCoherence, NoViolationsAnywhere) {
  const SchemeParam &Param = GetParam();
  for (const BenchmarkSpec &Bench : evaluationSuite()) {
    ExperimentConfig Config;
    Config.Policy = Param.Policy;
    Config.Heuristic = Param.Heuristic;
    Config.Machine.Organization = Param.Organization;
    Config.CheckCoherence = true;
    Config.MaxIterations = 600; // Keep the sweep fast.
    BenchmarkRunResult R = runBenchmark(Bench, Config);
    EXPECT_EQ(R.coherenceViolations(), 0u)
        << Bench.Name << " under " << coherencePolicyName(Param.Policy)
        << "/" << clusterHeuristicName(Param.Heuristic) << " on "
        << cacheOrganizationName(Param.Organization);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SuiteCoherence,
    ::testing::Values(
        SchemeParam{CoherencePolicy::MDC, ClusterHeuristic::PrefClus,
                    CacheOrganization::WordInterleaved},
        SchemeParam{CoherencePolicy::MDC, ClusterHeuristic::MinComs,
                    CacheOrganization::WordInterleaved},
        SchemeParam{CoherencePolicy::DDGT, ClusterHeuristic::PrefClus,
                    CacheOrganization::WordInterleaved},
        SchemeParam{CoherencePolicy::DDGT, ClusterHeuristic::MinComs,
                    CacheOrganization::WordInterleaved},
        SchemeParam{CoherencePolicy::MDC, ClusterHeuristic::PrefClus,
                    CacheOrganization::Replicated},
        SchemeParam{CoherencePolicy::DDGT, ClusterHeuristic::PrefClus,
                    CacheOrganization::Replicated},
        // With directory hardware even free scheduling is coherent.
        SchemeParam{CoherencePolicy::Baseline, ClusterHeuristic::MinComs,
                    CacheOrganization::CoherentDirectory}),
    [](const ::testing::TestParamInfo<SchemeParam> &Info) {
      return std::string(coherencePolicyName(Info.param.Policy)) + "_" +
             clusterHeuristicName(Info.param.Heuristic) + "_" +
             (Info.param.Organization ==
                      CacheOrganization::WordInterleaved
                  ? "interleaved"
              : Info.param.Organization == CacheOrganization::Replicated
                  ? "replicated"
                  : "directory");
    });

TEST(SuiteIntegration, AllSchemesCompleteWithSaneAccounting) {
  for (const BenchmarkSpec &Bench : evaluationSuite()) {
    for (CoherencePolicy Policy :
         {CoherencePolicy::Baseline, CoherencePolicy::MDC,
          CoherencePolicy::DDGT}) {
      ExperimentConfig Config;
      Config.Policy = Policy;
      Config.Heuristic = ClusterHeuristic::PrefClus;
      Config.MaxIterations = 400;
      BenchmarkRunResult R = runBenchmark(Bench, Config);
      for (const LoopRunResult &L : R.Loops) {
        EXPECT_EQ(L.Sim.TotalCycles,
                  L.Sim.ComputeCycles + L.Sim.StallCycles)
            << L.LoopName;
        EXPECT_GE(L.II, std::max(L.ResMII, L.RecMII)) << L.LoopName;
        EXPECT_GT(L.Sim.MemoryAccesses, 0u) << L.LoopName;
        double Sum = 0;
        for (size_t B = 0; B != 5; ++B)
          Sum += L.Sim.AccessClassification.fraction(B);
        EXPECT_NEAR(Sum, 1.0, 1e-9) << L.LoopName;
      }
    }
  }
}
