//===- tests/MetricsTest.cpp - metrics registry tests ---------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/support/Metrics.h"

#include "cvliw/net/Json.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace cvliw;

TEST(MetricCounter, StartsAtZeroAndAccumulates) {
  MetricCounter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(MetricGauge, LastWriterWins) {
  MetricGauge G;
  EXPECT_EQ(G.value(), 0u);
  G.set(7);
  G.set(3);
  EXPECT_EQ(G.value(), 3u);
}

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(8), 4u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucketIndex(1024), 11u);
  // Every bucket's bounds agree with its index mapping.
  for (size_t I = 1; I != LatencyHistogram::NumBuckets - 1; ++I) {
    EXPECT_EQ(LatencyHistogram::bucketIndex(
                  LatencyHistogram::bucketLowerBound(I)),
              I);
    EXPECT_EQ(LatencyHistogram::bucketIndex(
                  LatencyHistogram::bucketUpperBound(I) - 1),
              I);
  }
  // Out-of-range samples saturate into the top bucket.
  EXPECT_EQ(LatencyHistogram::bucketIndex(~uint64_t(0)),
            LatencyHistogram::NumBuckets - 1);
}

TEST(LatencyHistogram, EmptySnapshot) {
  LatencyHistogram H;
  LatencyHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.SumMicros, 0u);
  EXPECT_EQ(S.MaxMicros, 0u);
  EXPECT_DOUBLE_EQ(S.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 0.0);
}

TEST(LatencyHistogram, PercentileInterpolation) {
  // 100 identical 1000 us samples all land in bucket [512, 1024): the
  // median interpolates to the bucket midpoint, 768.
  LatencyHistogram H;
  for (int I = 0; I != 100; ++I)
    H.record(1000);
  LatencyHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 100u);
  EXPECT_EQ(S.SumMicros, 100000u);
  EXPECT_EQ(S.MaxMicros, 1000u);
  EXPECT_DOUBLE_EQ(S.percentile(50), 768.0);
  // p100 is clamped to the observed maximum, not the bucket's upper
  // bound.
  EXPECT_DOUBLE_EQ(S.percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(S.percentile(99.9), 1000.0);
}

TEST(LatencyHistogram, PercentileAcrossBuckets) {
  // 90 samples of 1 us (bucket [1,2)) and 10 of 1000 us ([512,1024)):
  // p50 stays in the low bucket, p99 lands in the high one.
  LatencyHistogram H;
  for (int I = 0; I != 90; ++I)
    H.record(1);
  for (int I = 0; I != 10; ++I)
    H.record(1000);
  LatencyHistogram::Snapshot S = H.snapshot();
  // Rank 50 of 90 in [1, 2): 1 + 50/90.
  EXPECT_NEAR(S.percentile(50), 1.0 + 50.0 / 90.0, 1e-9);
  // Rank 99 is the 9th of the 10 high samples: 512 + 0.9 * 512.
  EXPECT_NEAR(S.percentile(99), 512.0 + 0.9 * 512.0, 1e-9);
  EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
}

TEST(LatencyHistogram, ZeroSamplesStayInBucketZero) {
  LatencyHistogram H;
  for (int I = 0; I != 5; ++I)
    H.record(0);
  LatencyHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Buckets[0], 5u);
  EXPECT_EQ(S.MaxMicros, 0u);
  EXPECT_DOUBLE_EQ(S.percentile(50), 0.0);
}

TEST(LatencyHistogram, SnapshotMerge) {
  // The shard-aggregation path: merging two snapshots is bucket-wise
  // sum with max-of-maxima, indistinguishable from one histogram that
  // saw both streams.
  LatencyHistogram A, B, Both;
  for (int I = 0; I != 90; ++I) {
    A.record(1);
    Both.record(1);
  }
  for (int I = 0; I != 10; ++I) {
    B.record(1000);
    Both.record(1000);
  }
  LatencyHistogram::Snapshot Merged = A.snapshot();
  Merged.merge(B.snapshot());
  LatencyHistogram::Snapshot Expected = Both.snapshot();
  EXPECT_EQ(Merged.Count, Expected.Count);
  EXPECT_EQ(Merged.SumMicros, Expected.SumMicros);
  EXPECT_EQ(Merged.MaxMicros, Expected.MaxMicros);
  EXPECT_EQ(Merged.Buckets, Expected.Buckets);
  EXPECT_DOUBLE_EQ(Merged.percentile(99), Expected.percentile(99));
}

// Exercised under -fsanitize=thread in CI (the Metrics filter): the
// record fast path must be race-free without any lock.
TEST(LatencyHistogram, ConcurrentRecord) {
  LatencyHistogram H;
  MetricCounter C;
  constexpr int ThreadCount = 4;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != ThreadCount; ++T)
    Threads.emplace_back([&H, &C, T] {
      for (int I = 0; I != PerThread; ++I) {
        H.record(static_cast<uint64_t>(T * 1000 + I % 7));
        C.add();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  LatencyHistogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<uint64_t>(ThreadCount * PerThread));
  EXPECT_EQ(C.value(), static_cast<uint64_t>(ThreadCount * PerThread));
  uint64_t BucketTotal = 0;
  for (uint64_t B : S.Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, S.Count);
}

TEST(MetricsRegistry, LookupReturnsStableInstrument) {
  MetricsRegistry R;
  MetricCounter &C = R.counter("grids_served");
  C.add(2);
  EXPECT_EQ(&R.counter("grids_served"), &C);
  EXPECT_EQ(R.counter("grids_served").value(), 2u);
  // Distinct names are distinct instruments.
  EXPECT_NE(&R.counter("grids_served"), &R.counter("protocol_errors"));
  EXPECT_NE(&R.histogram("stage.a"), &R.histogram("stage.b"));
}

TEST(MetricsRegistry, WriteJsonPinnedShape) {
  MetricsRegistry R;
  R.counter("grids_served").add(3);
  R.gauge("sessions_open").set(1);
  for (int I = 0; I != 100; ++I)
    R.histogram("stage.request_decode").record(1000);

  JsonValue Out = JsonValue::object();
  R.writeJson(Out);

  EXPECT_EQ(Out.at("counters").u64("grids_served"), 3u);
  EXPECT_EQ(Out.at("gauges").u64("sessions_open"), 1u);
  const JsonValue &H = Out.at("histograms").at("stage.request_decode");
  // The per-histogram key set is part of the wire contract.
  EXPECT_EQ(H.u64("count"), 100u);
  EXPECT_EQ(H.u64("sum_us"), 100000u);
  EXPECT_EQ(H.u64("max_us"), 1000u);
  EXPECT_EQ(H.u64("p50_us"), 768u);
  EXPECT_EQ(H.u64("p90_us"), 973u); // 512 + 0.9 * 512, rounded
  EXPECT_EQ(H.u64("p99_us"), 1000u);
  // Round-trips through the parser (the metrics wire reply does this).
  std::string Text = Out.dump();
  JsonValue Parsed;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Text, Parsed, Error)) << Error;
  EXPECT_EQ(Parsed.at("histograms").at("stage.request_decode").u64("p50_us"),
            768u);
}
