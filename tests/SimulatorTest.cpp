//===- tests/SimulatorTest.cpp - kernel simulator tests -------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/sim/KernelSimulator.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

/// Hand-built loop: one load (cluster-1-homed data) and one consumer.
struct TinyKernel {
  Loop L{"tiny"};
  unsigned LoadOp, AddOp;
  DDG G;

  TinyKernel() {
    L.ExecTripCount = 200;
    unsigned Obj = L.addObject({"a", 0, 2048, UniqueAliasGroup});
    // Offset 4 with stride 16: always homed in cluster 1.
    unsigned S = L.addStream(AddressExpr::affine(Obj, 4, 16, 4));
    LoadOp = L.addOp(Operation::load(1, S));
    AddOp = L.addOp(Operation::compute(Opcode::IAdd, 2, {1}));
    G = buildRegisterFlowDDG(L);
  }

  /// Builds a schedule by hand: load in \p LoadCluster at cycle 0,
  /// consumer at cycle \p ConsumerCycle in the same cluster.
  Schedule schedule(unsigned LoadCluster, unsigned ConsumerCycle,
                    unsigned II, unsigned AssumedLat) {
    Schedule S;
    S.II = II;
    S.Length = ConsumerCycle + 1;
    S.Ops.resize(L.numOps());
    S.Ops[LoadOp] = {0, LoadCluster, AssumedLat};
    S.Ops[AddOp] = {ConsumerCycle, LoadCluster, 1};
    return S;
  }
};

} // namespace

TEST(Simulator, NoStallWhenConsumerFarEnough) {
  TinyKernel K;
  // Local load in its home cluster, consumer scheduled far enough to
  // absorb even the local-miss latency.
  Schedule S = K.schedule(/*LoadCluster=*/1, /*ConsumerCycle=*/13,
                          /*II=*/4, /*AssumedLat=*/11);
  SimOptions Opts;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_EQ(R.Iterations, 200u);
  EXPECT_EQ(R.StallCycles, 0u);
  EXPECT_GT(R.fraction(AccessType::LocalHit), 0.3);
}

TEST(Simulator, RemoteLoadWithTightConsumerStalls) {
  TinyKernel K;
  // Load issued from cluster 0 but data homed in cluster 1; consumer
  // just 1 cycle later: every access stalls ~4+ cycles.
  Schedule S = K.schedule(/*LoadCluster=*/0, /*ConsumerCycle=*/1,
                          /*II=*/4, /*AssumedLat=*/1);
  SimOptions Opts;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_GT(R.StallCycles, R.Iterations * 3)
      << "stall-on-use pays the remote round trip every iteration";
  EXPECT_GT(R.fraction(AccessType::RemoteHit), 0.5);
}

TEST(Simulator, LargerAssumedLatencyAbsorbsRemoteAccess) {
  TinyKernel K;
  MachineConfig Machine = MachineConfig::baseline();
  unsigned RemoteHit = Machine.nominalLatency(AccessType::RemoteHit);
  Schedule Tight = K.schedule(0, 1, 4, 1);
  Schedule Relaxed = K.schedule(0, RemoteHit + 2, 4, RemoteHit);
  SimOptions Opts;
  SimResult RTight = simulateKernel(K.L, K.G, Tight, Machine, Opts);
  SimResult RRelaxed = simulateKernel(K.L, K.G, Relaxed, Machine, Opts);
  EXPECT_LT(RRelaxed.StallCycles, RTight.StallCycles / 2)
      << "scheduling the load with the remote-hit latency removes most "
         "of the stall (paper §2.2's compromise)";
}

TEST(Simulator, ComputeCyclesFollowIIAndDrain) {
  TinyKernel K;
  Schedule S = K.schedule(1, 6, /*II=*/3, 1);
  SimOptions Opts;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  // Length = 7, II = 3 -> drain 4.
  EXPECT_EQ(R.ComputeCycles, 200u * 3 + 4);
  EXPECT_EQ(R.TotalCycles, R.ComputeCycles + R.StallCycles);
}

TEST(Simulator, DynamicCountsMatch) {
  TinyKernel K;
  Schedule S = K.schedule(1, 2, 4, 1);
  SimOptions Opts;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_EQ(R.DynamicOps, 200u * 2);
  EXPECT_EQ(R.MemoryAccesses, 200u);
}

TEST(Simulator, MaxIterationsCapsRun) {
  TinyKernel K;
  Schedule S = K.schedule(1, 2, 4, 1);
  SimOptions Opts;
  Opts.MaxIterations = 50;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_EQ(R.Iterations, 50u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  TinyKernel K;
  Schedule S = K.schedule(0, 1, 4, 1);
  SimOptions Opts;
  SimResult A = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  SimResult B = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.StallCycles, B.StallCycles);
}

//===----------------------------------------------------------------------===//
// Coherence checking
//===----------------------------------------------------------------------===//

namespace {

/// A loop with a store and an aliased load; the schedule places the
/// store in a remote cluster *after* the load's issue slot so the load
/// reads stale data: the Figure 2 scenario.
struct Figure2Kernel {
  Loop L{"fig2"};
  unsigned StoreOp, LoadOp;
  DDG G;

  Figure2Kernel() {
    L.ExecTripCount = 100;
    unsigned Obj = L.addObject({"x", 0, 64, UniqueAliasGroup});
    // Both touch the same loop-invariant address X (homed cluster 0).
    unsigned SStore = L.addStream(AddressExpr::affine(Obj, 0, 0, 4));
    unsigned SLoad = L.addStream(AddressExpr::affine(Obj, 0, 0, 4));
    StoreOp = L.addOp(Operation::store(NoReg, SStore));
    LoadOp = L.addOp(Operation::load(1, SLoad));
    G = buildRegisterFlowDDG(L);
    // The compiler knows they alias (MF store->load, distance 0).
    G.addEdge({StoreOp, LoadOp, DepKind::MemFlow, 0});
  }
};

} // namespace

TEST(Simulator, DetectsCoherenceViolationOfOptimisticBaseline) {
  Figure2Kernel K;
  // Store in cluster 3 (remote to X), load in cluster 0 one cycle
  // later: the store's update cannot reach home before the load reads.
  Schedule S;
  S.II = 4;
  S.Length = 2;
  S.Ops.resize(2);
  S.Ops[K.StoreOp] = {0, 3, 1};
  S.Ops[K.LoadOp] = {1, 0, 1};
  SimOptions Opts;
  Opts.Policy = CoherencePolicy::Baseline;
  Opts.CheckCoherence = true;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_GT(R.CoherenceViolations, 0u)
      << "the paper's Figure 2: the load reads a stale value";
}

TEST(Simulator, SameClusterSerializationIsCoherent) {
  Figure2Kernel K;
  // MDC's fix: both in cluster 0 in program order.
  Schedule S;
  S.II = 4;
  S.Length = 2;
  S.Ops.resize(2);
  S.Ops[K.StoreOp] = {0, 0, 1};
  S.Ops[K.LoadOp] = {1, 0, 1};
  SimOptions Opts;
  Opts.Policy = CoherencePolicy::MDC;
  Opts.CheckCoherence = true;
  SimResult R = simulateKernel(K.L, K.G, S, MachineConfig::baseline(), Opts);
  EXPECT_EQ(R.CoherenceViolations, 0u);
}

//===----------------------------------------------------------------------===//
// DDGT replica nullification
//===----------------------------------------------------------------------===//

TEST(Simulator, ReplicaInstancesNullifyOffHome) {
  // A store replicated over 4 clusters, each instance pinned to its
  // cluster; the address always homes in cluster 2.
  Loop L("replicas");
  L.ExecTripCount = 100;
  unsigned Obj = L.addObject({"o", 0, 4096, UniqueAliasGroup});
  unsigned S = L.addStream(AddressExpr::affine(Obj, 8, 16, 4));
  for (unsigned K = 0; K != 4; ++K) {
    Operation St = Operation::store(NoReg, S);
    St.ReplicaOf = 0;
    St.ReplicaIndex = K;
    L.addOp(St);
  }
  DDG G(4);

  Schedule Sched;
  Sched.II = 4;
  Sched.Length = 4;
  Sched.Ops.resize(4);
  for (unsigned K = 0; K != 4; ++K)
    Sched.Ops[K] = {K, K, 1};

  SimOptions Opts;
  Opts.Policy = CoherencePolicy::DDGT;
  SimResult R = simulateKernel(L, G, Sched, MachineConfig::baseline(), Opts);
  EXPECT_EQ(R.MemoryAccesses, 100u)
      << "only the home-cluster instance executes";
  EXPECT_EQ(R.NullifiedReplicaSlots, 300u);
  EXPECT_GT(R.fraction(AccessType::LocalHit) +
                R.fraction(AccessType::LocalMiss) +
                R.fraction(AccessType::Combined),
            0.99)
      << "every executed store instance is local (paper §3.3)";
}
