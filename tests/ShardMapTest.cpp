//===- tests/ShardMapTest.cpp - Consistent-hash routing tests -------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/net/ShardMap.h"
#include "cvliw/net/Json.h"
#include "cvliw/pipeline/ResultCache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cvliw;

namespace {

/// Synthetic keys drawn the way real route keys are drawn: FNV-1a over
/// a structured string, so the distribution test exercises the same
/// key-space shape the fleet hashes.
std::vector<uint64_t> syntheticKeys(size_t Count) {
  std::vector<uint64_t> Keys;
  Keys.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    Fnv1aHasher H;
    H.str("synthetic-key");
    H.u32(static_cast<uint32_t>(I));
    Keys.push_back(H.hash());
  }
  return Keys;
}

std::vector<std::string> threeShards() {
  return {"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"};
}

} // namespace

TEST(ShardMapTest, EmptyMapRoutesToZero) {
  ShardMap Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.size(), 0u);
  EXPECT_EQ(Map.shardOf(0), 0u);
  EXPECT_EQ(Map.shardOf(~0ull), 0u);
}

TEST(ShardMapTest, SingleShardOwnsEverything) {
  ShardMap Map({"127.0.0.1:9001"});
  for (uint64_t Key : syntheticKeys(100))
    EXPECT_EQ(Map.shardOf(Key), 0u);
}

TEST(ShardMapTest, RoutingIsDeterministic) {
  ShardMap A(threeShards());
  ShardMap B(threeShards());
  for (uint64_t Key : syntheticKeys(200))
    EXPECT_EQ(A.shardOf(Key), B.shardOf(Key));
}

// The distribution bound the fleet's load balance rests on: with 128
// virtual nodes, each of 3 shards owns at least 20% of 1000 synthetic
// keys (a perfectly even split would give 33%).
TEST(ShardMapTest, ThreeShardsEachOwnAtLeastTwentyPercent) {
  ShardMap Map(threeShards());
  std::vector<size_t> Owned(3, 0);
  const std::vector<uint64_t> Keys = syntheticKeys(1000);
  for (uint64_t Key : Keys) {
    size_t S = Map.shardOf(Key);
    ASSERT_LT(S, 3u);
    ++Owned[S];
  }
  for (size_t S = 0; S != 3; ++S)
    EXPECT_GE(Owned[S], Keys.size() / 5)
        << "shard " << S << " owns only " << Owned[S] << " of "
        << Keys.size() << " keys";
}

// Remap minimality: removing one shard moves exactly that shard's keys
// — every key owned by a survivor keeps its owner (compared by
// address, since ids renumber), and every key the dead shard owned
// lands on some survivor.
TEST(ShardMapTest, RemovingAShardMovesOnlyItsKeys) {
  const std::vector<std::string> Addrs = threeShards();
  ShardMap Full(Addrs);
  for (size_t Dead = 0; Dead != Addrs.size(); ++Dead) {
    ShardMap Survivors = Full.without(Dead);
    ASSERT_EQ(Survivors.size(), Addrs.size() - 1);
    for (uint64_t Key : syntheticKeys(1000)) {
      const std::string &Before = Full.shards()[Full.shardOf(Key)];
      const std::string &After =
          Survivors.shards()[Survivors.shardOf(Key)];
      if (Before != Addrs[Dead])
        EXPECT_EQ(After, Before) << "survivor-owned key moved";
      else
        EXPECT_NE(After, Addrs[Dead]);
    }
  }
}

TEST(ShardMapTest, IndexOf) {
  ShardMap Map(threeShards());
  EXPECT_EQ(Map.indexOf("127.0.0.1:9002"), 1u);
  EXPECT_EQ(Map.indexOf("127.0.0.1:9999"), Map.size());
}

TEST(ShardMapTest, JsonRoundTrip) {
  ShardMap Map(threeShards(), /*VirtualNodes=*/64);
  ShardMap Back = ShardMap::fromJson(Map.toJson());
  EXPECT_EQ(Back, Map);
  for (uint64_t Key : syntheticKeys(100))
    EXPECT_EQ(Back.shardOf(Key), Map.shardOf(Key));

  ShardSpec Spec{2, Map};
  ShardSpec SpecBack = shardSpecFromJson(shardSpecToJson(Spec));
  EXPECT_EQ(SpecBack.Index, 2u);
  EXPECT_EQ(SpecBack.Map, Map);
}

TEST(ShardMapTest, ShardSpecRejectsOutOfRangeIndex) {
  ShardSpec Spec{2, ShardMap(threeShards())};
  JsonValue J = shardSpecToJson(Spec);
  J.set("id", JsonValue::uint(3));
  EXPECT_THROW(shardSpecFromJson(J), JsonError);
}

TEST(ShardMapTest, ParseShardList) {
  EXPECT_EQ(parseShardList("a:1,b:2,c:3"),
            (std::vector<std::string>{"a:1", "b:2", "c:3"}));
  EXPECT_EQ(parseShardList("a:1"), (std::vector<std::string>{"a:1"}));
  EXPECT_EQ(parseShardList(",a:1,,b:2,"),
            (std::vector<std::string>{"a:1", "b:2"}));
  EXPECT_TRUE(parseShardList("").empty());
}
