//===- tests/ResultCacheTest.cpp - memoized loop runs ---------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/ResultCache.h"

#include "cvliw/pipeline/SweepEngine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace cvliw;

namespace {

LoopSpec referenceLoop() {
  LoopSpec L;
  L.Name = "cachetest.loop0";
  L.ProfileTrip = 100;
  L.ExecTrip = 200;
  L.Chains = {ChainSpec{1, 1, 2, 1, true}};
  L.ConsistentLoads = 3;
  L.ConsistentStores = 1;
  L.SeedBase = 7;
  return L;
}

BenchmarkSpec tinyBenchmark(const std::string &Name, uint64_t SeedBase) {
  BenchmarkSpec B;
  B.Name = Name;
  B.InterleaveBytes = 4;
  LoopSpec L = referenceLoop();
  L.Name = Name + ".loop0";
  L.SeedBase = SeedBase;
  B.Loops.push_back(L);
  return B;
}

SweepGrid tinyGrid() {
  SweepGrid Grid;
  Grid.Schemes = crossSchemes(
      {CoherencePolicy::Baseline, CoherencePolicy::MDC, CoherencePolicy::DDGT},
      {ClusterHeuristic::PrefClus});
  Grid.Benchmarks = {tinyBenchmark("alpha", 7), tinyBenchmark("beta", 11)};
  return Grid;
}

LoopRunResult sampleEntry() {
  LoopRunResult E;
  E.LoopName = "cachetest.loop0";
  E.Weight = 0.625;
  E.ExecTrip = 200;
  E.II = 9;
  E.ResMII = 7;
  E.RecMII = 3;
  E.NumOps = 21;
  E.NumMemOps = 8;
  E.CopiesPerIter = 4;
  E.BiggestChain = 5;
  E.Sim.Iterations = 200;
  E.Sim.TotalCycles = 2345;
  E.Sim.ComputeCycles = 2000;
  E.Sim.StallCycles = 345;
  E.Sim.DynamicOps = 4200;
  E.Sim.MemoryAccesses = 1600;
  E.Sim.AttractionBufferHits = 12;
  E.Sim.BusTransactions = 99;
  E.Sim.CoherenceViolations = 0;
  E.Sim.NullifiedReplicaSlots = 3;
  E.Sim.AccessClassification.add(0, 10);
  E.Sim.AccessClassification.add(3, 2);
  E.Sim.StallAttribution.add(1, 7);
  return E;
}

} // namespace

TEST(ResultCacheKey, StableAcrossRuns) {
  // The key must be a pure function of the configuration — recomputing
  // it (here, and in any other process or run) yields the same value.
  ExperimentConfig Config;
  LoopSpec Spec = referenceLoop();
  uint64_t First = resultCacheKey(Config, Spec);
  for (int I = 0; I != 3; ++I)
    EXPECT_EQ(resultCacheKey(Config, Spec), First);

  // Rebuilt (not copied) inputs with the same field values hash alike:
  // nothing address- or iteration-order-dependent leaks into the key.
  ExperimentConfig Config2;
  LoopSpec Spec2 = referenceLoop();
  EXPECT_EQ(resultCacheKey(Config2, Spec2), First);
}

TEST(ResultCacheKey, SensitiveToEveryAxis) {
  ExperimentConfig Config;
  LoopSpec Spec = referenceLoop();
  const uint64_t Base = resultCacheKey(Config, Spec);

  // A change to any field class — machine, experiment knob, loop
  // shape, seed, or the profile-input toggle — must change the key.
  {
    ExperimentConfig C = Config;
    C.Machine.InterleaveBytes = 2;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "machine field";
  }
  {
    ExperimentConfig C = Config;
    C.Machine.AttractionBuffersEnabled = true;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "machine toggle";
  }
  {
    ExperimentConfig C = Config;
    C.Policy = CoherencePolicy::MDC;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "policy";
  }
  {
    ExperimentConfig C = Config;
    C.Heuristic = ClusterHeuristic::PrefClus;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "heuristic";
  }
  {
    ExperimentConfig C = Config;
    C.ApplySpecialization = true;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "specialization";
  }
  {
    ExperimentConfig C = Config;
    C.AssignLatencies = false;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "latency knob";
  }
  {
    ExperimentConfig C = Config;
    C.Ordering = SchedulerOrdering::Swing;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "ordering";
  }
  {
    LoopSpec S = Spec;
    S.SeedBase += 1;
    EXPECT_NE(resultCacheKey(Config, S), Base) << "seed";
  }
  {
    LoopSpec S = Spec;
    S.ExecTrip += 1;
    EXPECT_NE(resultCacheKey(Config, S), Base) << "trip count";
  }
  {
    LoopSpec S = Spec;
    S.Chains[0].GroupLoads += 1;
    EXPECT_NE(resultCacheKey(Config, S), Base) << "chain shape";
  }
  {
    LoopSpec S = Spec;
    S.Name += "x";
    EXPECT_NE(resultCacheKey(Config, S), Base) << "loop name";
  }
  {
    ExperimentConfig C = Config;
    C.SimulateOnProfileInput = true;
    EXPECT_NE(resultCacheKey(C, Spec), Base) << "profile-input estimate";
  }
}

TEST(ResultCache, HitOnIdenticalConfigMissOnChange) {
  ResultCache Cache;
  ExperimentConfig Config;
  LoopSpec Spec = referenceLoop();

  LoopRunResult Out;
  uint64_t Key = resultCacheKey(Config, Spec);
  EXPECT_FALSE(Cache.lookup(Key, Out));
  EXPECT_EQ(Cache.misses(), 1u);

  LoopRunResult In;
  In.LoopName = Spec.Name;
  In.Sim.TotalCycles = 1234;
  Cache.insert(Key, In);
  EXPECT_EQ(Cache.size(), 1u);

  // Identical configuration: hit, with the stored payload.
  ASSERT_TRUE(Cache.lookup(resultCacheKey(Config, Spec), Out));
  EXPECT_EQ(Out.Sim.TotalCycles, 1234u);
  EXPECT_EQ(Cache.hits(), 1u);

  // Any field change: miss.
  LoopSpec Changed = Spec;
  Changed.SeedBase += 1;
  EXPECT_FALSE(Cache.lookup(resultCacheKey(Config, Changed), Out));

  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 0u);
}

TEST(ResultCache, SaveLoadRoundTripsEveryField) {
  std::string Path = ::testing::TempDir() + "cvliw_resultcache_test.cache";
  LoopRunResult In = sampleEntry();
  {
    ResultCache Cache;
    Cache.insert(42, In);
    ASSERT_TRUE(Cache.save(Path));
  }

  ResultCache Loaded;
  ASSERT_TRUE(Loaded.load(Path));
  EXPECT_EQ(Loaded.size(), 1u);
  LoopRunResult Out;
  ASSERT_TRUE(Loaded.lookup(42, Out));

  EXPECT_EQ(Out.LoopName, In.LoopName);
  EXPECT_EQ(Out.Weight, In.Weight);
  EXPECT_EQ(Out.ExecTrip, In.ExecTrip);
  EXPECT_EQ(Out.Scheduled, In.Scheduled);
  EXPECT_EQ(Out.II, In.II);
  EXPECT_EQ(Out.ResMII, In.ResMII);
  EXPECT_EQ(Out.RecMII, In.RecMII);
  EXPECT_EQ(Out.NumOps, In.NumOps);
  EXPECT_EQ(Out.NumMemOps, In.NumMemOps);
  EXPECT_EQ(Out.CopiesPerIter, In.CopiesPerIter);
  EXPECT_EQ(Out.BiggestChain, In.BiggestChain);
  EXPECT_EQ(Out.Sim.Iterations, In.Sim.Iterations);
  EXPECT_EQ(Out.Sim.TotalCycles, In.Sim.TotalCycles);
  EXPECT_EQ(Out.Sim.ComputeCycles, In.Sim.ComputeCycles);
  EXPECT_EQ(Out.Sim.StallCycles, In.Sim.StallCycles);
  EXPECT_EQ(Out.Sim.DynamicOps, In.Sim.DynamicOps);
  EXPECT_EQ(Out.Sim.MemoryAccesses, In.Sim.MemoryAccesses);
  EXPECT_EQ(Out.Sim.AttractionBufferHits,
            In.Sim.AttractionBufferHits);
  EXPECT_EQ(Out.Sim.BusTransactions, In.Sim.BusTransactions);
  EXPECT_EQ(Out.Sim.CoherenceViolations,
            In.Sim.CoherenceViolations);
  EXPECT_EQ(Out.Sim.NullifiedReplicaSlots,
            In.Sim.NullifiedReplicaSlots);
  for (size_t B = 0; B != 5; ++B) {
    EXPECT_EQ(Out.Sim.AccessClassification.count(B),
              In.Sim.AccessClassification.count(B));
    EXPECT_EQ(Out.Sim.StallAttribution.count(B),
              In.Sim.StallAttribution.count(B));
  }
  std::remove(Path.c_str());
}

TEST(ResultCache, LoadRejectsMissingAndForeignFiles) {
  ResultCache Cache;
  EXPECT_FALSE(Cache.load(::testing::TempDir() + "cvliw_no_such.cache"));

  std::string Path = ::testing::TempDir() + "cvliw_foreign_test.cache";
  {
    std::ofstream OS(Path);
    OS << "some-other-format 9\n1 2 3\n";
  }
  EXPECT_FALSE(Cache.load(Path));
  EXPECT_EQ(Cache.size(), 0u);
  std::remove(Path.c_str());
}

TEST(ResultCache, CachedSweepIsByteIdenticalToUncached) {
  // The determinism acceptance: a sweep served from the cache must
  // serialize to exactly the bytes of a cold sweep of the same grid.
  ResultCache Shared;

  SweepEngine Cold(tinyGrid(), /*Threads=*/2);
  Cold.setCache(&Shared);
  Cold.run();
  EXPECT_EQ(Cold.cacheHits(), 0u);
  EXPECT_EQ(Cold.cacheMisses(), Cold.loopItems());

  SweepEngine Warm(tinyGrid(), /*Threads=*/3);
  Warm.setCache(&Shared);
  Warm.run();
  EXPECT_EQ(Warm.cacheHits(), Warm.loopItems())
      << "identical grid must be fully served from the cache";
  EXPECT_EQ(Warm.cacheMisses(), 0u);

  SweepEngine Uncached(tinyGrid(), /*Threads=*/2);
  Uncached.setCache(nullptr);
  Uncached.run();

  std::ostringstream ColdCsv, WarmCsv, UncachedCsv;
  Cold.writeCsv(ColdCsv);
  Warm.writeCsv(WarmCsv);
  Uncached.writeCsv(UncachedCsv);
  EXPECT_EQ(ColdCsv.str(), WarmCsv.str());
  EXPECT_EQ(ColdCsv.str(), UncachedCsv.str());
}

TEST(ResultCache, OverlappingGridsShareBaselinePoints) {
  // Two different "drivers" (grids) overlapping on their baseline
  // schemes — the multi-driver reuse the cache layer exists for.
  ResultCache Shared;

  SweepGrid GridA;
  GridA.Schemes = crossSchemes({CoherencePolicy::Baseline,
                                CoherencePolicy::MDC},
                               {ClusterHeuristic::PrefClus});
  GridA.Benchmarks = {tinyBenchmark("alpha", 7)};

  SweepGrid GridB;
  GridB.Schemes = crossSchemes({CoherencePolicy::Baseline,
                                CoherencePolicy::DDGT},
                               {ClusterHeuristic::PrefClus});
  GridB.Benchmarks = {tinyBenchmark("alpha", 7)};

  SweepEngine A(GridA, /*Threads=*/1);
  A.setCache(&Shared);
  A.run();
  EXPECT_EQ(A.cacheHits(), 0u);

  SweepEngine B(GridB, /*Threads=*/1);
  B.setCache(&Shared);
  B.run();
  EXPECT_EQ(B.cacheHits(), 1u) << "the shared baseline(prefclus) point";
  EXPECT_EQ(B.cacheMisses(), 1u) << "the DDGT point is new";

  // And the shared point's row is identical in both engines.
  std::ostringstream CsvA, CsvB;
  A.writeCsv(CsvA);
  B.writeCsv(CsvB);
  std::string FirstRowA = CsvA.str().substr(0, CsvA.str().find('\n'));
  std::string FirstRowB = CsvB.str().substr(0, CsvB.str().find('\n'));
  EXPECT_EQ(FirstRowA, FirstRowB); // Same header...
  EXPECT_EQ(A.run()[0].Result.totalCycles(),
            B.run()[0].Result.totalCycles());
}

TEST(ResultCache, StatsSnapshotCountersAndFootprint) {
  ResultCache Cache;
  ResultCacheStats Empty = Cache.stats();
  EXPECT_EQ(Empty.Entries, 0u);
  EXPECT_EQ(Empty.Bytes, 0u);

  LoopRunResult E = sampleEntry();
  Cache.insert(1, E);
  Cache.insert(2, E);
  LoopRunResult Out;
  (void)Cache.lookup(1, Out); // Hit.
  (void)Cache.lookup(9, Out); // Miss.

  ResultCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_GE(S.Bytes, 2 * (sizeof(LoopRunResult) + E.LoopName.size()))
      << "footprint counts entry structs and owned strings";

  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
}

TEST(ResultCache, SaveMergesConcurrentWritersEntries) {
  // The last-writer-wins hazard: process A and process B share one
  // cache path; each computes a disjoint entry. Before the merge-on-
  // save fix, whichever saved last erased the other's entry.
  std::string Path = ::testing::TempDir() + "cvliw_merge_test.cache";
  std::remove(Path.c_str());

  LoopRunResult EntryA = sampleEntry();
  EntryA.LoopName = "writerA.loop0";
  LoopRunResult EntryB = sampleEntry();
  EntryB.LoopName = "writerB.loop0";
  EntryB.Sim.TotalCycles = 777;

  ResultCache A;
  A.insert(100, EntryA);
  ASSERT_TRUE(A.save(Path));

  // B never loaded A's file (it started before A saved) — its save
  // must still preserve A's entry.
  ResultCache B;
  B.insert(200, EntryB);
  ASSERT_TRUE(B.save(Path));

  ResultCache Merged;
  ASSERT_TRUE(Merged.load(Path));
  EXPECT_EQ(Merged.size(), 2u);
  LoopRunResult Out;
  ASSERT_TRUE(Merged.lookup(100, Out));
  EXPECT_EQ(Out.LoopName, "writerA.loop0");
  ASSERT_TRUE(Merged.lookup(200, Out));
  EXPECT_EQ(Out.Sim.TotalCycles, 777u);
  std::remove(Path.c_str());
}

TEST(ResultCache, SaveKeepsInMemoryEntryOnKeyClash) {
  std::string Path = ::testing::TempDir() + "cvliw_clash_test.cache";
  std::remove(Path.c_str());

  LoopRunResult Disk = sampleEntry();
  Disk.Sim.TotalCycles = 1111;
  ResultCache First;
  First.insert(42, Disk);
  ASSERT_TRUE(First.save(Path));

  // By the determinism contract a clash is identical anyway; the
  // in-memory side winning is the documented tie-break.
  LoopRunResult Mem = sampleEntry();
  Mem.Sim.TotalCycles = 2222;
  ResultCache Second;
  Second.insert(42, Mem);
  ASSERT_TRUE(Second.save(Path));

  ResultCache Loaded;
  ASSERT_TRUE(Loaded.load(Path));
  EXPECT_EQ(Loaded.size(), 1u);
  LoopRunResult Out;
  ASSERT_TRUE(Loaded.lookup(42, Out));
  EXPECT_EQ(Out.Sim.TotalCycles, 2222u);
  std::remove(Path.c_str());
}

TEST(ResultCache, SaveIgnoresCorruptPreexistingFile) {
  std::string Path = ::testing::TempDir() + "cvliw_corrupt_merge.cache";
  {
    std::ofstream OS(Path);
    OS << "cvliw-result-cache " << CVLIW_RESULT_CACHE_VERSION << "\n"
       << "zz not-a-valid-entry\n";
  }
  ResultCache Cache;
  Cache.insert(7, sampleEntry());
  ASSERT_TRUE(Cache.save(Path)) << "corrupt file is replaced, not fatal";

  ResultCache Loaded;
  ASSERT_TRUE(Loaded.load(Path));
  EXPECT_EQ(Loaded.size(), 1u);
  std::remove(Path.c_str());
}

TEST(ResultCache, PersistedCacheServesASecondProcessColdStart) {
  // Simulates the cross-driver disk flow: engine A persists, a fresh
  // cache (a new process) loads and the same grid is fully served.
  std::string Path = ::testing::TempDir() + "cvliw_persist_test.cache";
  ResultCache First;
  SweepEngine A(tinyGrid(), /*Threads=*/2);
  A.setCache(&First);
  A.run();
  ASSERT_TRUE(First.save(Path));

  ResultCache Second;
  ASSERT_TRUE(Second.load(Path));
  SweepEngine B(tinyGrid(), /*Threads=*/1);
  B.setCache(&Second);
  B.run();
  EXPECT_EQ(B.cacheHits(), B.loopItems());
  EXPECT_EQ(B.cacheMisses(), 0u);

  std::ostringstream CsvA, CsvB;
  A.writeCsv(CsvA);
  B.writeCsv(CsvB);
  EXPECT_EQ(CsvA.str(), CsvB.str());
  std::remove(Path.c_str());
}

TEST(ResultCache, LruBoundEvictsLeastRecentlyUsed) {
  ResultCache Cache;
  LoopRunResult E = sampleEntry();
  Cache.insert(1, E);
  size_t OneEntryBytes = Cache.stats().Bytes;
  ASSERT_GT(OneEntryBytes, 0u);
  // Room for exactly three same-shaped entries.
  Cache.setMaxBytes(3 * OneEntryBytes);

  Cache.insert(2, E);
  Cache.insert(3, E);
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.evictions(), 0u);

  // Touch 1 so 2 becomes the least recently used...
  LoopRunResult Out;
  EXPECT_TRUE(Cache.lookup(1, Out));
  // ...then overflow: 2 must go, 1 and 3 must stay.
  Cache.insert(4, E);
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_TRUE(Cache.lookup(1, Out));
  EXPECT_FALSE(Cache.lookup(2, Out));
  EXPECT_TRUE(Cache.lookup(3, Out));
  EXPECT_TRUE(Cache.lookup(4, Out));
  EXPECT_LE(Cache.stats().Bytes, Cache.maxBytes());
}

TEST(ResultCache, SetMaxBytesShrinksAnOversizedTableImmediately) {
  ResultCache Cache;
  LoopRunResult E = sampleEntry();
  for (uint64_t Key = 1; Key <= 10; ++Key)
    Cache.insert(Key, E);
  EXPECT_EQ(Cache.size(), 10u);
  size_t OneEntryBytes = Cache.stats().Bytes / 10;

  Cache.setMaxBytes(2 * OneEntryBytes);
  EXPECT_LE(Cache.size(), 2u);
  EXPECT_GE(Cache.evictions(), 8u);
  // The most recently inserted key survives.
  LoopRunResult Out;
  EXPECT_TRUE(Cache.lookup(10, Out));
}

TEST(ResultCache, BoundSmallerThanOneEntryKeepsTheNewestEntry) {
  ResultCache Cache;
  Cache.setMaxBytes(1); // Far below a single entry's footprint.
  LoopRunResult E = sampleEntry();
  Cache.insert(1, E);
  Cache.insert(2, E);
  // Degrades to a one-entry cache instead of thrashing to empty.
  EXPECT_EQ(Cache.size(), 1u);
  LoopRunResult Out;
  EXPECT_TRUE(Cache.lookup(2, Out));
  EXPECT_FALSE(Cache.lookup(1, Out));
}

TEST(ResultCache, StatsReportBoundAndEvictions) {
  ResultCache Cache;
  EXPECT_EQ(Cache.stats().MaxBytes, 0u);
  EXPECT_EQ(Cache.stats().Evictions, 0u);

  Cache.setMaxBytes(12345);
  EXPECT_EQ(Cache.stats().MaxBytes, 12345u);
  EXPECT_EQ(Cache.maxBytes(), 12345u);

  Cache.clear();
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Evictions, 0u);
  // The bound itself survives clear(); only contents and counters reset.
  EXPECT_EQ(Cache.maxBytes(), 12345u);
}

TEST(ResultCache, UnboundedCacheNeverEvicts) {
  ResultCache Cache;
  LoopRunResult E = sampleEntry();
  for (uint64_t Key = 1; Key <= 100; ++Key)
    Cache.insert(Key, E);
  EXPECT_EQ(Cache.size(), 100u);
  EXPECT_EQ(Cache.evictions(), 0u);
}

TEST(ResultCache, BoundedSweepStaysByteIdenticalToUnbounded) {
  // Eviction can cost recomputation, never correctness: a sweep over a
  // pathologically small cache must serialize exactly like one over an
  // unbounded cache.
  SweepGrid Grid = tinyGrid();

  ResultCache Unbounded;
  SweepEngine Reference(Grid, /*Threads=*/1);
  Reference.setCache(&Unbounded);
  Reference.run();
  std::ostringstream ReferenceCsv;
  Reference.writeCsv(ReferenceCsv);

  ResultCache Bounded;
  Bounded.setMaxBytes(1); // One-entry cache: constant churn.
  SweepEngine Tiny(Grid, /*Threads=*/1);
  Tiny.setCache(&Bounded);
  Tiny.run();
  std::ostringstream TinyCsv;
  Tiny.writeCsv(TinyCsv);

  EXPECT_EQ(ReferenceCsv.str(), TinyCsv.str());
  EXPECT_LE(Bounded.size(), 1u);
}

TEST(ResultCache, TrulyConcurrentSavesConvergeOnTheUnion) {
  // The remaining save-merge race the sidecar lock closes: writers
  // whose read-merge-rename sections *interleave* could drop each
  // other's novel entries. Under the flock, saves serialize: however
  // the threads race, the final file holds every writer's entries.
  std::string Path = ::testing::TempDir() + "cvliw_lock_test.cache";
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());

  constexpr unsigned Writers = 8;
  constexpr unsigned EntriesPerWriter = 4;
  std::vector<ResultCache> Caches(Writers);
  for (unsigned W = 0; W != Writers; ++W)
    for (unsigned E = 0; E != EntriesPerWriter; ++E) {
      LoopRunResult Entry = sampleEntry();
      Entry.LoopName =
          "writer" + std::to_string(W) + ".loop" + std::to_string(E);
      Caches[W].insert(1000 * (W + 1) + E, Entry);
    }

  std::vector<std::thread> Threads;
  // One char per writer, not vector<bool>: concurrent writes to packed
  // bits would be the data race this test exists to rule out.
  std::vector<char> Saved(Writers, 0);
  for (unsigned W = 0; W != Writers; ++W)
    Threads.emplace_back(
        [&, W] { Saved[W] = Caches[W].save(Path) ? 1 : 0; });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned W = 0; W != Writers; ++W)
    EXPECT_TRUE(Saved[W]) << "writer " << W;

  ResultCache Merged;
  ASSERT_TRUE(Merged.load(Path));
  EXPECT_EQ(Merged.size(), size_t{Writers} * EntriesPerWriter);
  LoopRunResult Out;
  for (unsigned W = 0; W != Writers; ++W)
    for (unsigned E = 0; E != EntriesPerWriter; ++E)
      EXPECT_TRUE(Merged.lookup(1000 * (W + 1) + E, Out))
          << "writer " << W << " entry " << E << " was dropped";
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}
