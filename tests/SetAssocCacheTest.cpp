//===- tests/SetAssocCacheTest.cpp - cache structure tests ----------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/sim/SetAssocCache.h"

#include <gtest/gtest.h>

using namespace cvliw;

TEST(SetAssocCache, HitAfterInsert) {
  SetAssocCache C(4, 2);
  EXPECT_FALSE(C.lookup(10, 0));
  C.insert(10, 1);
  EXPECT_TRUE(C.lookup(10, 2));
  EXPECT_TRUE(C.contains(10));
  EXPECT_FALSE(C.contains(11));
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  SetAssocCache C(1, 2); // Fully associative pair.
  C.insert(1, 10);
  C.insert(2, 11);
  EXPECT_TRUE(C.lookup(1, 12)); // 1 becomes MRU.
  C.insert(3, 13);              // Evicts 2 (LRU).
  EXPECT_TRUE(C.contains(1));
  EXPECT_FALSE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
}

TEST(SetAssocCache, SetsAreIndependent) {
  SetAssocCache C(2, 1); // Direct-mapped, 2 sets.
  C.insert(0, 1);        // Set 0.
  C.insert(1, 2);        // Set 1.
  EXPECT_TRUE(C.contains(0));
  EXPECT_TRUE(C.contains(1));
  C.insert(2, 3); // Set 0: evicts key 0.
  EXPECT_FALSE(C.contains(0));
  EXPECT_TRUE(C.contains(1));
}

TEST(SetAssocCache, DirtyTracking) {
  SetAssocCache C(2, 2);
  C.insert(4, 1);
  EXPECT_FALSE(C.markDirty(5, 2)) << "absent key";
  EXPECT_TRUE(C.markDirty(4, 3));
  EXPECT_EQ(C.flush(), 1u) << "one dirty entry written back";
  EXPECT_FALSE(C.contains(4)) << "flush invalidates";
}

TEST(SetAssocCache, InsertDirtyAndWritebackSignal) {
  SetAssocCache C(1, 1);
  C.insert(1, 0, /*Dirty=*/true);
  EXPECT_TRUE(C.insert(2, 1)) << "evicting a dirty entry needs writeback";
  EXPECT_FALSE(C.insert(3, 2)) << "clean eviction needs none";
}

TEST(SetAssocCache, ReinsertRefreshesNotDuplicates) {
  SetAssocCache C(1, 2);
  C.insert(1, 0);
  C.insert(1, 5);
  EXPECT_EQ(C.occupancy(), 1u);
}

TEST(SetAssocCache, FlushCountsAllDirty) {
  SetAssocCache C(4, 2);
  for (uint64_t K = 0; K != 6; ++K)
    C.insert(K, K, /*Dirty=*/(K % 2) == 0);
  EXPECT_EQ(C.flush(), 3u);
  EXPECT_EQ(C.occupancy(), 0u);
}
