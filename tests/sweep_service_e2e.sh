#!/bin/sh
#===- tests/sweep_service_e2e.sh - sweep service end-to-end check --------===#
#
# Exercises the whole sweep-service stack against a real paper table:
#
#   1. start cvliw-sweepd on an ephemeral port,
#   2. run a bench driver with --remote against it and assert its table
#      is byte-identical to the golden capture (check_driver.sh),
#   3. run the same driver locally with --dump-grid/--csv, submit the
#      dumped grid through cvliw-sweep-client, and diff the client's
#      CSV against the driver's local CSV byte-for-byte,
#   4. query status (the cache must be warm from steps 2-3),
#   5. request shutdown and assert the daemon exits 0 cleanly.
#
# Usage: sweep_service_e2e.sh <cvliw-sweepd> <cvliw-sweep-client>
#                             <driver-binary> <golden-file>
#
#===----------------------------------------------------------------------===#
set -u

sweepd="$1"
client="$2"
driver="$3"
golden="$4"
here=$(dirname "$0")

workdir=$(mktemp -d)
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

"$sweepd" --port 0 --port-file "$workdir/port" --threads 2 \
  > "$workdir/sweepd.log" 2>&1 &
daemon_pid=$!

# The daemon binds port 0 (kernel-assigned) and publishes the bound
# port by renaming a temp file into place, so a non-empty port file is
# always complete — no fixed-port race, no partial read.
i=0
while [ ! -s "$workdir/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ] || ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon did not become ready" >&2
    cat "$workdir/sweepd.log" >&2
    exit 1
  fi
  sleep 0.1
done
hostport="127.0.0.1:$(cat "$workdir/port")"
echo "daemon up at $hostport"

# Step 2: the paper table, served remotely, against its golden capture.
sh "$here/golden/check_driver.sh" "$driver" "$golden" \
   --remote "$hostport" || exit 1

# Step 3: the same grid through the CLI client.
"$driver" --dump-grid "$workdir/grid.json" --csv "$workdir/local.csv" \
  > /dev/null || {
  echo "FAIL: local driver run failed" >&2
  exit 1
}
"$client" "$hostport" sweep --grid "$workdir/grid.json" \
  --csv "$workdir/remote.csv" 2> "$workdir/client.log" || {
  echo "FAIL: client sweep failed" >&2
  cat "$workdir/client.log" >&2
  exit 1
}
if ! diff "$workdir/local.csv" "$workdir/remote.csv" >&2; then
  echo "FAIL: client CSV differs from the driver's local CSV" >&2
  exit 1
fi
echo "OK: client CSV matches the driver's local CSV"

# Step 4: the daemon's cache must be warm from the grids above.
"$client" "$hostport" status || exit 1

# Step 5: clean shutdown.
"$client" "$hostport" shutdown || exit 1
wait "$daemon_pid"
rc=$?
daemon_pid=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: daemon exited with status $rc" >&2
  cat "$workdir/sweepd.log" >&2
  exit 1
fi
if ! grep -q "shutdown complete" "$workdir/sweepd.log"; then
  echo "FAIL: daemon log lacks the clean-shutdown line" >&2
  cat "$workdir/sweepd.log" >&2
  exit 1
fi
echo "OK: sweep service end-to-end (clean shutdown)"
