#!/bin/sh
#===- tests/sweep_fleet_kill_e2e.sh - shard-death rebalance ---------------===#
#
# The shard-death story, end to end:
#
#   1. start THREE cvliw-sweepd daemons with NO shard identity flags
#      (they trust the client's claims — a survivor map after the
#      rebalance no longer matches any fixed positional identity),
#      single-threaded so the sweep is demonstrably in flight,
#   2. run `cvliw-bench fig7 --shards h1,h2,h3` in the background,
#   3. as soon as shard 1's status shows the request in flight,
#      kill -9 that daemon,
#   4. assert the run still exits 0, its filtered output is
#      byte-identical to the fig7 golden capture (rows recomputed on
#      the survivors, never duplicated), and the rebalance announced
#      itself (the "rehashing" line).
#
# Usage: sweep_fleet_kill_e2e.sh <cvliw-sweepd> <cvliw-bench>
#                                <cvliw-sweep-client> <fig7-golden>
#
#===----------------------------------------------------------------------===#
set -u

sweepd="$1"
bench="$2"
client="$3"
golden="$4"

workdir=$(mktemp -d)
pids=
bench_pid=
cleanup() {
  [ -n "$bench_pid" ] && kill "$bench_pid" 2>/dev/null
  for pid in $pids; do
    kill "$pid" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

for k in 0 1 2; do
  "$sweepd" --port 0 --port-file "$workdir/port$k" --threads 1 \
    --max-batch-rows 8 > "$workdir/sweepd$k.log" 2>&1 &
  eval "pid$k=$!"
  pids="$pids $!"
done

hostports=
for k in 0 1 2; do
  i=0
  while [ ! -s "$workdir/port$k" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon $k did not become ready" >&2
      cat "$workdir/sweepd$k.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  hp="127.0.0.1:$(cat "$workdir/port$k")"
  eval "hostport$k=\$hp"
  hostports="$hostports${hostports:+,}$hp"
done
echo "fleet up: $hostports (no pinned identities)"

"$bench" fig7 --shards "$hostports" \
  > "$workdir/fig7.out" 2> "$workdir/fig7.err" &
bench_pid=$!

# Step 3: wait until the victim demonstrably holds in-flight fleet
# work (its status session gauges are served inline by the reader
# thread, even while the 1-thread pool is busy simulating), then kill
# it without ceremony.
i=0
while :; do
  if "$client" "$hostport1" status > "$workdir/victim.status" 2>/dev/null &&
     grep -Eq 'session [0-9]+: [1-9][0-9]* requests' "$workdir/victim.status"; then
    break
  fi
  i=$((i + 1))
  if [ "$i" -gt 400 ] || ! kill -0 "$bench_pid" 2>/dev/null; then
    echo "FAIL: never observed the sweep in flight on the victim shard" >&2
    cat "$workdir/fig7.err" >&2
    exit 1
  fi
  sleep 0.05
done
kill -9 "$pid1"
echo "killed shard 1 mid-sweep"

wait "$bench_pid"
rc=$?
bench_pid=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: cvliw-bench exited $rc after the shard death" >&2
  cat "$workdir/fig7.err" >&2
  grep '^sweep: ' "$workdir/fig7.out" >&2
  exit 1
fi

# Step 4a: the rebalance must have announced itself.
grep -q 'rehash' "$workdir/fig7.out" || {
  echo "FAIL: no rehashing line — the kill landed outside the sweep" >&2
  grep '^sweep: ' "$workdir/fig7.out" >&2
  exit 1
}

# Step 4b: rows recomputed, never duplicated or dropped — the output is
# still byte-identical to the golden capture.
grep -v '^sweep: ' "$workdir/fig7.out" > "$workdir/fig7.filtered"
if ! diff "$golden" "$workdir/fig7.filtered" >&2; then
  echo "FAIL: fig7 output differs from golden after the rebalance" >&2
  exit 1
fi
echo "OK: shard death rehashed onto survivors, fig7 still byte-identical"

# The survivors shut down cleanly; the victim is already gone.
"$client" "$hostport0,$hostport2" shutdown || exit 1
wait "$pid0" || { echo "FAIL: shard 0 exited non-zero" >&2; exit 1; }
wait "$pid2" || { echo "FAIL: shard 2 exited non-zero" >&2; exit 1; }
pids=
echo "OK: kill-a-shard end-to-end"
