//===- tests/DDGTest.cpp - dependence graph tests -------------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/ir/DDG.h"
#include "cvliw/ir/DDGBuilder.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

unsigned constantLatency(unsigned) { return 1; }

} // namespace

TEST(DDG, AddAndRemoveEdges) {
  DDG G(3);
  unsigned E0 = G.addEdge({0, 1, DepKind::RegFlow, 0});
  unsigned E1 = G.addEdge({1, 2, DepKind::MemFlow, 1});
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_TRUE(G.hasEdge(0, 1, DepKind::RegFlow, 0));
  EXPECT_TRUE(G.hasRegFlow(0, 1, 0));
  EXPECT_FALSE(G.hasRegFlow(0, 1, 1));

  G.removeEdge(E0);
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_FALSE(G.hasRegFlow(0, 1, 0));
  EXPECT_TRUE(G.isDead(E0));
  EXPECT_FALSE(G.isDead(E1));
  EXPECT_EQ(G.succEdges(0).size(), 0u);
  EXPECT_EQ(G.succEdges(1).size(), 1u);
  EXPECT_EQ(G.predEdges(2).size(), 1u);
}

TEST(DDG, MemoryEdgesFilter) {
  DDG G(4);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::MemAnti, 0});
  G.addEdge({2, 3, DepKind::MemOutput, 1});
  G.addEdge({3, 0, DepKind::Sync, 0});
  EXPECT_EQ(G.memoryEdges().size(), 2u);
}

TEST(DDG, AddNodeGrows) {
  DDG G(2);
  unsigned N = G.addNode();
  EXPECT_EQ(N, 2u);
  EXPECT_EQ(G.numNodes(), 3u);
  G.addEdge({2, 0, DepKind::RegFlow, 0});
  EXPECT_EQ(G.succEdges(2).size(), 1u);
}

TEST(DDG, SccsOfChainAndCycle) {
  // 0 -> 1 -> 2 -> 1 (cycle {1,2}), 2 -> 3.
  DDG G(4);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::RegFlow, 0});
  G.addEdge({2, 1, DepKind::RegFlow, 1});
  G.addEdge({2, 3, DepKind::RegFlow, 0});
  unsigned NumSccs = 0;
  std::vector<unsigned> Comp = G.computeSccs(NumSccs);
  EXPECT_EQ(NumSccs, 3u);
  EXPECT_EQ(Comp[1], Comp[2]);
  EXPECT_NE(Comp[0], Comp[1]);
  EXPECT_NE(Comp[3], Comp[1]);
}

TEST(DDG, SccIgnoresDeadEdges) {
  DDG G(2);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  unsigned Back = G.addEdge({1, 0, DepKind::RegFlow, 1});
  unsigned NumSccs = 0;
  G.computeSccs(NumSccs);
  EXPECT_EQ(NumSccs, 1u);
  G.removeEdge(Back);
  G.computeSccs(NumSccs);
  EXPECT_EQ(NumSccs, 2u);
}

TEST(DDG, RecMIISimpleCycle) {
  // Cycle 0 -> 1 -> 0 with total latency 2, total distance 1: RecMII 2.
  DDG G(2);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 0, DepKind::RegFlow, 1});
  EXPECT_EQ(G.computeRecMII(constantLatency), 2u);
}

TEST(DDG, RecMIILatencyWeighted) {
  // Latency-10 edge on a distance-1 self cycle: RecMII = 11.
  DDG G(2);
  unsigned Fwd = G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 0, DepKind::RegFlow, 1});
  auto Lat = [&](unsigned I) { return I == Fwd ? 10u : 1u; };
  EXPECT_EQ(G.computeRecMII(Lat), 11u);
}

TEST(DDG, RecMIIDistanceSpread) {
  // Total distance 2 halves the requirement: ceil(4/2) = 2.
  DDG G(2);
  G.addEdge({0, 1, DepKind::RegFlow, 1});
  G.addEdge({1, 0, DepKind::RegFlow, 1});
  auto Lat = [](unsigned) { return 2u; };
  EXPECT_EQ(G.computeRecMII(Lat), 2u);
}

TEST(DDG, RecMIIAcyclicIsOne) {
  DDG G(3);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::RegFlow, 0});
  EXPECT_EQ(G.computeRecMII(constantLatency), 1u);
}

TEST(DDG, FeasibleAtIIMatchesRecMII) {
  DDG G(3);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::RegFlow, 0});
  G.addEdge({2, 0, DepKind::RegFlow, 1});
  unsigned RecMII = G.computeRecMII(constantLatency);
  EXPECT_FALSE(G.feasibleAtII(RecMII - 1, constantLatency));
  EXPECT_TRUE(G.feasibleAtII(RecMII, constantLatency));
}

TEST(DDG, HeightsFollowLongestPath) {
  DDG G(4);
  unsigned Long = G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 3, DepKind::RegFlow, 0});
  G.addEdge({0, 2, DepKind::RegFlow, 0});
  auto Lat = [&](unsigned I) { return I == Long ? 5u : 1u; };
  std::vector<int64_t> H = G.computeHeights(Lat);
  EXPECT_EQ(H[3], 0);
  EXPECT_EQ(H[1], 1);
  EXPECT_EQ(H[2], 0);
  EXPECT_EQ(H[0], 6) << "takes the longer branch";
}

TEST(DDG, HeightsIgnoreLoopCarriedEdges) {
  DDG G(2);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 0, DepKind::RegFlow, 1});
  std::vector<int64_t> H = G.computeHeights(constantLatency);
  EXPECT_EQ(H[0], 1);
  EXPECT_EQ(H[1], 0);
}

TEST(DDG, Reachability) {
  DDG G(4);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::MemFlow, 1});
  EXPECT_TRUE(G.reaches(0, 2));
  EXPECT_FALSE(G.reaches(2, 0));
  EXPECT_TRUE(G.reaches(3, 3)) << "trivially reaches itself";
  unsigned Dead = G.addEdge({2, 3, DepKind::RegFlow, 0});
  EXPECT_TRUE(G.reaches(0, 3));
  G.removeEdge(Dead);
  EXPECT_FALSE(G.reaches(0, 3)) << "dead edges do not carry reachability";
}

TEST(DDG, DepKindNames) {
  EXPECT_STREQ(depKindName(DepKind::RegFlow), "RF");
  EXPECT_STREQ(depKindName(DepKind::MemFlow), "MF");
  EXPECT_STREQ(depKindName(DepKind::MemAnti), "MA");
  EXPECT_STREQ(depKindName(DepKind::MemOutput), "MO");
  EXPECT_STREQ(depKindName(DepKind::Sync), "SYNC");
  EXPECT_TRUE(isMemoryDep(DepKind::MemFlow));
  EXPECT_FALSE(isMemoryDep(DepKind::Sync));
  EXPECT_FALSE(isMemoryDep(DepKind::RegFlow));
}

//===----------------------------------------------------------------------===//
// DDGBuilder
//===----------------------------------------------------------------------===//

namespace {

/// A little loop: load r1; add r2 = r1 + r3; store r2; r3 = r3 + r2
/// (loop-carried through r3's use-before-def).
Loop makeLoop() {
  Loop L("builder");
  unsigned Obj = L.addObject({"a", 0, 1024, UniqueAliasGroup});
  unsigned S0 = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
  unsigned S1 = L.addStream(AddressExpr::affine(Obj, 512, 16, 4));
  L.addOp(Operation::load(1, S0));                          // op 0
  L.addOp(Operation::compute(Opcode::IAdd, 2, {1, 3}));     // op 1
  L.addOp(Operation::store(2, S1));                         // op 2
  L.addOp(Operation::compute(Opcode::IAdd, 3, {3, 2}));     // op 3
  return L;
}

} // namespace

TEST(DDGBuilder, RegisterFlowDistances) {
  Loop L = makeLoop();
  DDG G = buildRegisterFlowDDG(L);
  EXPECT_TRUE(G.hasRegFlow(0, 1, 0)) << "load feeds add";
  EXPECT_TRUE(G.hasRegFlow(1, 2, 0)) << "add feeds store";
  EXPECT_TRUE(G.hasRegFlow(1, 3, 0)) << "add feeds accumulator";
  EXPECT_TRUE(G.hasRegFlow(3, 1, 1))
      << "use before def reads last iteration's value";
  EXPECT_TRUE(G.hasRegFlow(3, 3, 1)) << "self accumulation";
}

TEST(DDGBuilder, VerifyAcceptsWellFormed) {
  Loop L = makeLoop();
  DDG G = buildRegisterFlowDDG(L);
  EXPECT_TRUE(verifyDDG(L, G));
}

TEST(DDGBuilder, VerifyRejectsBadRegFlow) {
  Loop L = makeLoop();
  DDG G = buildRegisterFlowDDG(L);
  // Store (op 2) defines no register; an RF edge from it is malformed.
  G.addEdge({2, 1, DepKind::RegFlow, 0});
  EXPECT_FALSE(verifyDDG(L, G));
}

TEST(DDGBuilder, VerifyRejectsBadMemoryEdge) {
  Loop L = makeLoop();
  DDG G = buildRegisterFlowDDG(L);
  // MF must run store -> load; op 1 is an add.
  G.addEdge({1, 0, DepKind::MemFlow, 0});
  EXPECT_FALSE(verifyDDG(L, G));
}
