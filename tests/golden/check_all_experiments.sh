#!/bin/sh
#===- tests/golden/check_all_experiments.sh - enumeration golden check ----===#
#
# The enumeration-driven golden harness: the experiment list comes from
# `cvliw-bench --list-names`, not from a hard-coded driver list. Every
# registered experiment is run by name and its table output (minus the
# filtered "sweep: " metadata lines) must be byte-identical to
# <golden-dir>/<name>.golden; the name set and the golden-capture set
# must match exactly, so adding an experiment without a capture — or
# leaving a stale capture behind — fails.
#
# A shared result-cache file speeds the sixteen runs up without being
# able to change a byte (the determinism contract, itself golden- and
# verify-serial-enforced).
#
# Usage: check_all_experiments.sh <cvliw-bench> <golden-dir>
#
#===----------------------------------------------------------------------===#
set -u

bench="$1"
goldendir="$2"
here=$(dirname "$0")

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

names=$("$bench" --list-names) || {
  echo "FAIL: cvliw-bench --list-names failed" >&2
  exit 1
}
[ -n "$names" ] || {
  echo "FAIL: cvliw-bench --list-names reported no experiments" >&2
  exit 1
}

# Set equality: every name has a capture, every capture has a name.
printf '%s\n' "$names" | sort > "$workdir/names"
for f in "$goldendir"/*.golden; do
  basename "$f" .golden
done | sort > "$workdir/captures"
if ! diff "$workdir/names" "$workdir/captures" >&2; then
  echo "FAIL: registered experiments and golden captures disagree" >&2
  exit 1
fi

status=0
for name in $names; do
  if ! sh "$here/check_driver.sh" "$bench" "$goldendir/$name.golden" \
       "$name" --cache "$workdir/cache"; then
    status=1
  fi
done
exit $status
