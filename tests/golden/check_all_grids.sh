#!/bin/sh
#===- tests/golden/check_all_grids.sh - grid fixture equivalence ----------===#
#
# Pins every registered experiment's expanded grid(s) to the fixtures
# in tests/golden/grids/ (captured from the pre-registry drivers'
# --dump-grid output): `cvliw-bench <name> --dump-grid` must reproduce
# <name>.grid.json byte for byte, including any suffixed secondary
# grids (hardware_vs_software's <name>.grid.json.hw). The fixture set
# and the produced-file set must match exactly.
#
# Usage: check_all_grids.sh <cvliw-bench> <grids-dir>
#
#===----------------------------------------------------------------------===#
set -u

bench="$1"
gridsdir="$2"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

names=$("$bench" --list-names) || {
  echo "FAIL: cvliw-bench --list-names failed" >&2
  exit 1
}

status=0
for name in $names; do
  # --dump-grids serializes the registered grid(s) without evaluating
  # anything, so the whole fixture sweep is near-instant.
  "$bench" --dump-grids "$name" "$workdir/$name.grid.json" \
    > /dev/null || {
    echo "FAIL: cvliw-bench --dump-grids $name failed" >&2
    status=1
    continue
  }
done

( cd "$workdir" && ls *.grid.json* 2>/dev/null | sort ) > "$workdir/produced"
( cd "$gridsdir" && ls *.grid.json* 2>/dev/null | sort ) > "$workdir/fixtures"
if ! diff "$workdir/fixtures" "$workdir/produced" >&2; then
  echo "FAIL: produced grid files and fixtures disagree" >&2
  status=1
fi

for f in "$gridsdir"/*.grid.json*; do
  base=$(basename "$f")
  [ -f "$workdir/$base" ] || continue
  if ! diff "$f" "$workdir/$base" > /dev/null; then
    echo "FAIL: grid $base differs from its fixture" >&2
    diff "$f" "$workdir/$base" | head -5 >&2
    status=1
  else
    echo "OK: $base matches its fixture"
  fi
done
exit $status
