#!/bin/sh
#===- tests/golden/check_driver.sh - golden-output harness ----------------===#
#
# Runs one bench driver and asserts its table output is byte-identical
# to the golden capture taken before the SweepEngine port. Lines
# beginning with "sweep: " are run metadata (wall-clock, thread count,
# cache hit/miss counts) and are filtered from both sides; everything
# else — every table cell, header and footnote — must match exactly.
#
# Usage: check_driver.sh <driver-binary> <golden-file> [driver args...]
#
#===----------------------------------------------------------------------===#
set -u

driver="$1"
golden="$2"
shift 2

out=$("$driver" "$@") || {
  echo "FAIL: $driver exited non-zero" >&2
  exit 1
}
filtered=$(printf '%s\n' "$out" | grep -v '^sweep: ')
expected=$(cat "$golden")

if [ "$filtered" != "$expected" ]; then
  echo "FAIL: $driver output differs from $golden:" >&2
  printf '%s\n' "$filtered" | diff "$golden" - >&2
  exit 1
fi
echo "OK: $driver matches $golden"
