//===- tests/ProfileTest.cpp - preferred-cluster profiling ----------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/profile/ClusterProfiler.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

Loop strideLoop() {
  Loop L("profile");
  L.ProfileTripCount = 400;
  L.ExecTripCount = 400;
  unsigned Obj = L.addObject({"a", 0, 4096, UniqueAliasGroup});
  // Stride N*I = 16 with offsets picking clusters 2 and 0.
  L.addOp(Operation::load(1, L.addStream(AddressExpr::affine(Obj, 8, 16, 4))));
  L.addOp(Operation::load(2, L.addStream(AddressExpr::affine(Obj, 0, 16, 4))));
  // A rotating stream: stride = I.
  L.addOp(Operation::load(3, L.addStream(AddressExpr::affine(Obj, 0, 4, 4))));
  L.addOp(Operation::compute(Opcode::IAdd, 4, {1, 2, 3}));
  return L;
}

} // namespace

TEST(ClusterProfiler, ConsistentStreamsHaveUnanimousPreference) {
  Loop L = strideLoop();
  MachineConfig Machine = MachineConfig::baseline();
  ClusterProfile P = profileLoop(L, Machine);
  EXPECT_EQ(P.preferredCluster(0), 2u);
  EXPECT_EQ(P.preferredCluster(1), 0u);
  EXPECT_DOUBLE_EQ(P.fractionToCluster(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(P.fractionToCluster(0, 1), 0.0);
}

TEST(ClusterProfiler, RotatingStreamIsUniform) {
  Loop L = strideLoop();
  MachineConfig Machine = MachineConfig::baseline();
  ClusterProfile P = profileLoop(L, Machine);
  for (unsigned C = 0; C != 4; ++C)
    EXPECT_NEAR(P.fractionToCluster(2, C), 0.25, 0.01);
}

TEST(ClusterProfiler, NonMemoryOpsHaveEmptyHistograms) {
  Loop L = strideLoop();
  ClusterProfile P = profileLoop(L, MachineConfig::baseline());
  for (unsigned C = 0; C != 4; ++C)
    EXPECT_EQ(P.histogram(3)[C], 0u);
}

TEST(ClusterProfiler, SetPreferenceIsArgmaxOfSums) {
  // The paper's Figure 3 chain example: pref vectors {70,30,0,0},
  // {20,50,30,0}, {0,0,100,0}, {0,10,20,70} sum to {90,90,150,70}:
  // the average preferred cluster is 3 (index 2).
  ClusterProfile P(4, 4);
  const unsigned Hist[4][4] = {{70, 30, 0, 0},
                               {20, 50, 30, 0},
                               {0, 0, 100, 0},
                               {0, 10, 20, 70}};
  for (unsigned Op = 0; Op != 4; ++Op)
    for (unsigned C = 0; C != 4; ++C)
      for (unsigned K = 0; K != Hist[Op][C]; ++K)
        P.record(Op, C);
  EXPECT_EQ(P.preferredClusterOfSet({0, 1, 2, 3}), 2u);
  EXPECT_EQ(P.preferredCluster(0), 0u);
  EXPECT_EQ(P.preferredCluster(2), 2u);
}

TEST(ClusterProfiler, InterleaveFactorChangesHomes) {
  Loop L("interleave");
  unsigned Obj = L.addObject({"a", 0, 4096, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::affine(Obj, 4, 8, 2))));
  MachineConfig Two = MachineConfig::baseline();
  Two.InterleaveBytes = 2;
  MachineConfig Four = MachineConfig::baseline();
  Four.InterleaveBytes = 4;
  ClusterProfile PTwo = profileLoop(L, Two);
  ClusterProfile PFour = profileLoop(L, Four);
  EXPECT_EQ(PTwo.preferredCluster(0), 2u) << "addr 4 / 2B = chunk 2";
  EXPECT_EQ(PFour.preferredCluster(0), 1u) << "addr 4 / 4B = chunk 1";
}

TEST(ClusterProfiler, ProfileAndExecutionInputsDifferForGathers) {
  Loop L("gather");
  L.ProfileTripCount = 500;
  L.ExecTripCount = 500;
  unsigned Obj = L.addObject({"t", 0, 64, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::gather(Obj, 4, 3))));
  MachineConfig Machine = MachineConfig::baseline();
  ClusterProfile P1 = profileLoop(L, Machine, /*UseProfileInput=*/true);
  ClusterProfile P2 = profileLoop(L, Machine, /*UseProfileInput=*/false);
  EXPECT_NE(P1.histogram(0), P2.histogram(0));
}
