//===- tests/CompressTest.cpp - LZ4-block frame compression tests ---------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
// The protocol-v5 frame compression: the in-tree LZ4-block codec
// (round trips, the only-if-smaller contract, corrupt-block
// rejection), the CVWZ payload envelope with its raw-size bound, and
// the transparency of readFrame / FrameDecoder — a compressed frame
// decodes to the identical inner payload and kind, so no caller above
// the framing layer can tell whether compression was on.
//
//===----------------------------------------------------------------------===//

#include "cvliw/net/Compress.h"
#include "cvliw/net/Frame.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include <sys/socket.h>

using namespace cvliw;

namespace {

/// A connected in-process socket pair for framing tests.
struct SocketPair {
  Socket A, B;
  SocketPair() {
    int Fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Socket(Fds[0]);
    B = Socket(Fds[1]);
  }
};

/// JSON-ish text with the repetition real row frames have — the
/// workload compression exists for.
std::string compressiblePayload(size_t Rows) {
  std::string Out = "{\"type\":\"row_batch\",\"rows\":[";
  for (size_t I = 0; I != Rows; ++I) {
    if (I)
      Out += ',';
    Out += "{\"row\":{\"machine\":\"unified-16w\",\"scheme\":"
           "\"mdc/prefclus\",\"benchmark\":\"epicdec\",\"point\":" +
           std::to_string(I) + "}}";
  }
  Out += "]}";
  return Out;
}

std::string randomBytes(size_t Len, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int> Byte(0, 255);
  std::string Out;
  Out.reserve(Len);
  for (size_t I = 0; I != Len; ++I)
    Out.push_back(static_cast<char>(Byte(Rng)));
  return Out;
}

} // namespace

TEST(Compress, BlockRoundTripsVariedPayloads) {
  std::mt19937_64 Rng(0xc0dec);
  std::uniform_int_distribution<int> Byte(0, 3); // small alphabet: matches
  for (size_t Len : {size_t(1), size_t(4), size_t(13), size_t(512),
                     size_t(4096), size_t(100000)}) {
    std::string Raw;
    Raw.reserve(Len);
    for (size_t I = 0; I != Len; ++I)
      Raw.push_back(static_cast<char>('a' + Byte(Rng)));
    std::string Block;
    if (!compressBlock(Raw.data(), Raw.size(), Block))
      continue; // tiny inputs may not shrink; the caller sends raw
    ASSERT_LT(Block.size(), Raw.size());
    std::string Back;
    ASSERT_TRUE(decompressBlock(Block.data(), Block.size(), Raw.size(), Back));
    EXPECT_EQ(Back, Raw) << "length " << Len;
  }

  // The RLE special case: matches that overlap their own output.
  std::string Runs(10000, 'x');
  std::string Block;
  ASSERT_TRUE(compressBlock(Runs.data(), Runs.size(), Block));
  EXPECT_LT(Block.size(), 100u) << "a pure run must collapse";
  std::string Back;
  ASSERT_TRUE(decompressBlock(Block.data(), Block.size(), Runs.size(), Back));
  EXPECT_EQ(Back, Runs);
}

TEST(Compress, IncompressibleInputIsRefusedNotGrown) {
  // Random bytes cannot shrink; the codec must say so and leave the
  // output buffer exactly as given (the caller then sends raw).
  const std::string Raw = randomBytes(4096, 42);
  std::string Block = "sentinel";
  EXPECT_FALSE(compressBlock(Raw.data(), Raw.size(), Block));
  EXPECT_EQ(Block, "sentinel");
}

TEST(Compress, DecompressRejectsCorruptBlocks) {
  const std::string Raw = compressiblePayload(40);
  std::string Block;
  ASSERT_TRUE(compressBlock(Raw.data(), Raw.size(), Block));

  std::string Out;
  // Every strict prefix is a truncated sequence stream.
  for (size_t Len = 0; Len != Block.size(); ++Len) {
    Out.clear();
    EXPECT_FALSE(decompressBlock(Block.data(), Len, Raw.size(), Out))
        << "prefix of " << Len << " bytes decompressed";
  }
  // A wrong declared raw size is an output over/underrun.
  Out.clear();
  EXPECT_FALSE(decompressBlock(Block.data(), Block.size(), Raw.size() - 1, Out));
  Out.clear();
  EXPECT_FALSE(decompressBlock(Block.data(), Block.size(), Raw.size() + 1, Out));
  // A zero match offset can never be valid LZ4.
  std::string ZeroOffset;
  ZeroOffset.push_back(static_cast<char>(0x04)); // lit-len 0, match-len 4+4
  ZeroOffset.push_back('\0');                    // offset 0 (invalid)
  ZeroOffset.push_back('\0');
  Out.clear();
  EXPECT_FALSE(decompressBlock(ZeroOffset.data(), ZeroOffset.size(), 8, Out));
}

TEST(Compress, FramePayloadEnvelopeRoundTripsBothKinds) {
  const std::string Raw = compressiblePayload(40);
  for (FrameKind Kind : {FrameKind::Json, FrameKind::Binary}) {
    std::string Envelope = "stale"; // compressFramePayload owns clearing
    ASSERT_TRUE(compressFramePayload(Raw, Kind, Envelope));
    EXPECT_LT(Envelope.size(), Raw.size())
        << "the envelope must only ever shrink bytes on the wire";
    std::string Back;
    FrameKind BackKind =
        Kind == FrameKind::Json ? FrameKind::Binary : FrameKind::Json;
    std::string Error;
    ASSERT_TRUE(decompressFramePayload(Envelope, DefaultMaxFrameBytes, Back,
                                       BackKind, Error))
        << Error;
    EXPECT_EQ(Back, Raw);
    EXPECT_EQ(BackKind, Kind);
  }

  // Incompressible payloads are refused at the envelope layer too.
  const std::string Noise = randomBytes(4096, 7);
  std::string Envelope;
  EXPECT_FALSE(compressFramePayload(Noise, FrameKind::Json, Envelope));
}

TEST(Compress, EnvelopeBoundsDeclaredRawSizeBeforeAllocating) {
  // A hostile peer shrinks a frame to a few bytes but declares a huge
  // raw size: the reader's bound must refuse before any allocation.
  const std::string Raw = compressiblePayload(40);
  std::string Envelope;
  ASSERT_TRUE(compressFramePayload(Raw, FrameKind::Json, Envelope));

  std::string Back;
  FrameKind Kind = FrameKind::Json;
  std::string Error;
  EXPECT_FALSE(decompressFramePayload(Envelope, Raw.size() - 1, Back, Kind,
                                      Error))
      << "declared raw size above the reader bound must be refused";
  EXPECT_TRUE(decompressFramePayload(Envelope, Raw.size(), Back, Kind, Error))
      << Error;

  // Garbage envelopes: empty, bad inner kind, truncated varint.
  EXPECT_FALSE(decompressFramePayload(std::string(), DefaultMaxFrameBytes,
                                      Back, Kind, Error));
  std::string BadKind = Envelope;
  BadKind[0] = 2; // neither CVW1 nor CVW2
  EXPECT_FALSE(decompressFramePayload(BadKind, DefaultMaxFrameBytes, Back,
                                      Kind, Error));
  EXPECT_FALSE(decompressFramePayload(std::string(1, '\0'),
                                      DefaultMaxFrameBytes, Back, Kind,
                                      Error));
}

TEST(Compress, WriteFrameMaybeCompressedIsTransparentToReadFrame) {
  SocketPair P;
  const std::string Big = compressiblePayload(40);
  const std::string Small = "{\"type\":\"ping\"}";
  ASSERT_GE(Big.size(), CompressMinBytes);
  ASSERT_LT(Small.size(), CompressMinBytes);

  // Big: compressed on the wire (fewer bytes reported); small: sent
  // raw below the threshold. Both must read back identically, with the
  // inner kind reported — the envelope never leaks upward.
  size_t WireBig = 0, WireSmall = 0;
  ASSERT_TRUE(writeFrameMaybeCompressed(P.A, Big, FrameKind::Json,
                                        CompressMinBytes, DefaultMaxFrameBytes,
                                        &WireBig));
  ASSERT_TRUE(writeFrameMaybeCompressed(P.A, Small, FrameKind::Json,
                                        CompressMinBytes, DefaultMaxFrameBytes,
                                        &WireSmall));
  EXPECT_LT(WireBig, Big.size() + FrameHeaderBytes);
  EXPECT_EQ(WireSmall, Small.size() + FrameHeaderBytes);

  std::string Payload;
  FrameKind Kind = FrameKind::Binary;
  EXPECT_EQ(readFrame(P.B, Payload, Kind), FrameStatus::Ok);
  EXPECT_EQ(Payload, Big);
  EXPECT_EQ(Kind, FrameKind::Json);
  EXPECT_EQ(readFrame(P.B, Payload, Kind), FrameStatus::Ok);
  EXPECT_EQ(Payload, Small);
  EXPECT_EQ(Kind, FrameKind::Json);
}

TEST(Compress, FrameDecoderDecompressesCVWZByteAtATime) {
  // The incremental decoder path the clients read rows through: a CVWZ
  // frame fed one byte at a time yields the decompressed payload and
  // its inner (binary) kind.
  const std::string Raw = compressiblePayload(40);
  std::string Envelope;
  ASSERT_TRUE(compressFramePayload(Raw, FrameKind::Binary, Envelope));

  std::string Wire;
  Wire.append(FrameMagicZ, 4);
  const uint32_t Len = static_cast<uint32_t>(Envelope.size());
  const char Header[4] = {
      static_cast<char>(Len >> 24), static_cast<char>(Len >> 16),
      static_cast<char>(Len >> 8), static_cast<char>(Len)};
  Wire.append(Header, 4);
  Wire += Envelope;

  FrameDecoder Decoder;
  std::string Out;
  FrameKind Kind = FrameKind::Json;
  for (size_t I = 0; I != Wire.size(); ++I) {
    ASSERT_FALSE(Decoder.next(Out, Kind));
    ASSERT_TRUE(Decoder.feed(Wire.data() + I, 1));
  }
  ASSERT_TRUE(Decoder.next(Out, Kind));
  EXPECT_EQ(Out, Raw);
  EXPECT_EQ(Kind, FrameKind::Binary);

  // A corrupt envelope poisons the stream like a malformed magic.
  FrameDecoder Bad;
  std::string Corrupt = Wire;
  Corrupt[FrameHeaderBytes] = 2; // bad inner-kind byte
  ASSERT_TRUE(Bad.feed(Corrupt.data(), Corrupt.size()));
  EXPECT_FALSE(Bad.next(Out, Kind));
  EXPECT_EQ(Bad.error(), FrameStatus::Malformed);
  EXPECT_FALSE(Bad.feed(Wire.data(), Wire.size()))
      << "a poisoned decoder stays poisoned";
}
