#!/bin/sh
#===- tests/sweep_fleet_e2e.sh - 3-shard fleet round trip -----------------===#
#
# The fleet-mode acceptance gate:
#
#   1. start THREE cvliw-sweepd daemons on ephemeral ports, each pinned
#      to its positional identity (--shard-id k --shard-count 3) with
#      row batching on,
#   2. run `cvliw-bench --all --shards h1,h2,h3` — every experiment's
#      (point, loop) items consistent-hash across the fleet, partial
#      rows merge client-side — and assert the full output is
#      byte-identical to the concatenation of every golden capture in
#      registry order,
#   3. assert the run went through the fleet (the "fleet of 3 shards"
#      line) and no daemon counted a single misrouted item,
#   4. re-run one golden experiment with client-side --trace on and
#      assert its output is STILL byte-identical to the golden capture
#      (observability must never change a result byte),
#   5. re-run one golden experiment over the full protocol-v5 wire —
#      binary CVW2 requests explicitly on plus --compress on — and
#      assert the output is byte-identical to the golden capture AND
#      that every shard's wire-byte counter came in below its raw-byte
#      counter (compression really engaged),
#   6. shut the whole fleet down through the client and assert every
#      daemon exits 0,
#   7. validate shard 0's --trace file with check_trace.py: it must
#      load as Chrome trace_event JSON and carry codec, simulation,
#      scheduling and socket spans (skipped when python3 is absent).
#
# Usage: sweep_fleet_e2e.sh <cvliw-sweepd> <cvliw-bench>
#                           <cvliw-sweep-client> <golden-dir>
#
#===----------------------------------------------------------------------===#
set -u

sweepd="$1"
bench="$2"
client="$3"
goldendir="$4"
scriptdir=$(dirname "$0")

workdir=$(mktemp -d)
pids=
cleanup() {
  for pid in $pids; do
    kill "$pid" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Shard 0 records a Chrome trace so step 6 can prove the daemon-side
# spans (codec / simulation / scheduling / socket) really land.
for k in 0 1 2; do
  trace_flags=
  [ "$k" = 0 ] && trace_flags="--trace $workdir/trace0.json"
  # shellcheck disable=SC2086
  "$sweepd" --port 0 --port-file "$workdir/port$k" --threads 2 \
    --max-batch-rows 8 --shard-id "$k" --shard-count 3 $trace_flags \
    > "$workdir/sweepd$k.log" 2>&1 &
  pids="$pids $!"
done

hostports=
for k in 0 1 2; do
  i=0
  while [ ! -s "$workdir/port$k" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon $k did not become ready" >&2
      cat "$workdir/sweepd$k.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  hp="127.0.0.1:$(cat "$workdir/port$k")"
  eval "hostport$k=\$hp"
  hostports="$hostports${hostports:+,}$hp"
done
echo "fleet up: $hostports"

# Step 2: all sixteen experiments across the 3-shard fleet.
"$bench" --all --shards "$hostports" \
  > "$workdir/all.out" 2> "$workdir/all.err" || {
  echo "FAIL: cvliw-bench --all --shards failed" >&2
  cat "$workdir/all.err" >&2
  exit 1
}
grep -v '^sweep: ' "$workdir/all.out" > "$workdir/all.filtered"

first=1
for name in $("$bench" --list-names); do
  [ "$first" = 1 ] || echo
  first=0
  cat "$goldendir/$name.golden"
done > "$workdir/expected"

if ! diff "$workdir/expected" "$workdir/all.filtered" >&2; then
  echo "FAIL: fleet --all output differs from the golden captures" >&2
  exit 1
fi
echo "OK: all experiments through the 3-shard fleet match their goldens"

# Step 3: the fleet path was taken, and consistent hashing agreed on
# both sides — zero misrouted items on every shard, which also pins the
# shard identity lines in the status output.
grep -q '^sweep: fleet of 3 shards:' "$workdir/all.out" || {
  echo "FAIL: no fleet summary line — the run bypassed fleet mode" >&2
  grep '^sweep: ' "$workdir/all.out" >&2
  exit 1
}
for k in 0 1 2; do
  eval "hp=\$hostport$k"
  "$client" "$hp" status > "$workdir/status$k.out" || exit 1
  grep -q "^shard id:             $k\$" "$workdir/status$k.out" || {
    echo "FAIL: shard $k status lacks its shard id" >&2
    cat "$workdir/status$k.out" >&2
    exit 1
  }
  grep -q '^shard count:          3$' "$workdir/status$k.out" || {
    echo "FAIL: shard $k status lacks the fleet size" >&2
    cat "$workdir/status$k.out" >&2
    exit 1
  }
  grep -q '^misrouted items:      0$' "$workdir/status$k.out" || {
    echo "FAIL: shard $k counted misrouted items" >&2
    cat "$workdir/status$k.out" >&2
    exit 1
  }
done
echo "OK: fleet route agreement (0 misrouted items on all 3 shards)"

# Step 4: one golden experiment again, now with the client tracing —
# the rows and table bytes must not change by a single byte.
"$bench" table2 --shards "$hostports" \
  --trace "$workdir/client_trace.json" \
  > "$workdir/traced.out" 2> "$workdir/traced.err" || {
  echo "FAIL: traced table2 run failed" >&2
  cat "$workdir/traced.err" >&2
  exit 1
}
grep -v '^sweep: ' "$workdir/traced.out" > "$workdir/traced.filtered"
if ! diff "$goldendir/table2.golden" "$workdir/traced.filtered" >&2; then
  echo "FAIL: --trace changed the table2 output" >&2
  exit 1
fi
[ -s "$workdir/client_trace.json" ] || {
  echo "FAIL: client --trace wrote no trace file" >&2
  exit 1
}
echo "OK: table2 through the fleet with --trace matches its golden"

# Step 5: the full protocol-v5 wire — binary CVW2 requests explicitly
# on plus per-frame compression — must not change a result byte, and
# the shards must show the compression in their raw-vs-wire byte split.
"$bench" table3 --shards "$hostports" \
  --binary-requests on --compress on \
  > "$workdir/compressed.out" 2> "$workdir/compressed.err" || {
  echo "FAIL: compressed binary-request table3 run failed" >&2
  cat "$workdir/compressed.err" >&2
  exit 1
}
grep -v '^sweep: ' "$workdir/compressed.out" > "$workdir/compressed.filtered"
if ! diff "$goldendir/table3.golden" "$workdir/compressed.filtered" >&2; then
  echo "FAIL: --compress + binary requests changed the table3 output" >&2
  exit 1
fi
raw_total=0
wire_total=0
for k in 0 1 2; do
  eval "hp=\$hostport$k"
  "$client" "$hp" status > "$workdir/statusz$k.out" || exit 1
  raw=$(sed -n 's/^bytes sent raw: *//p' "$workdir/statusz$k.out")
  wire=$(sed -n 's/^bytes sent wire: *//p' "$workdir/statusz$k.out")
  raw_total=$((raw_total + raw))
  wire_total=$((wire_total + wire))
done
if [ "$wire_total" -ge "$raw_total" ]; then
  echo "FAIL: fleet-wide wire bytes ($wire_total) not below raw bytes" \
    "($raw_total) — compression never engaged" >&2
  exit 1
fi
echo "OK: table3 over compressed binary-request wire matches its golden" \
  "($wire_total wire bytes for $raw_total raw)"

# Step 6: one client-driven shutdown for the whole fleet.
"$client" "$hostports" shutdown || exit 1
rc_all=0
for pid in $pids; do
  wait "$pid" || rc_all=1
done
pids=
if [ "$rc_all" -ne 0 ]; then
  echo "FAIL: a daemon exited non-zero" >&2
  cat "$workdir"/sweepd*.log >&2
  exit 1
fi

# Step 7: shard 0 wrote its trace on shutdown — it must be a loadable
# Chrome trace with every pipeline span category present.
if command -v python3 >/dev/null 2>&1; then
  python3 "$scriptdir/check_trace.py" "$workdir/trace0.json" \
    --require-cat codec --require-cat simulation \
    --require-cat scheduling --require-cat socket || {
    echo "FAIL: shard 0 trace is invalid or incomplete" >&2
    cat "$workdir/sweepd0.log" >&2
    exit 1
  }
  python3 "$scriptdir/check_trace.py" "$workdir/client_trace.json" || {
    echo "FAIL: client trace is invalid" >&2
    exit 1
  }
else
  echo "SKIP: python3 not found, trace files not validated"
fi
echo "OK: 3-shard fleet end-to-end (clean shutdown)"
