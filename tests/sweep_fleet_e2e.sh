#!/bin/sh
#===- tests/sweep_fleet_e2e.sh - 3-shard fleet round trip -----------------===#
#
# The fleet-mode acceptance gate:
#
#   1. start THREE cvliw-sweepd daemons on ephemeral ports, each pinned
#      to its positional identity (--shard-id k --shard-count 3) with
#      row batching on,
#   2. run `cvliw-bench --all --shards h1,h2,h3` — every experiment's
#      (point, loop) items consistent-hash across the fleet, partial
#      rows merge client-side — and assert the full output is
#      byte-identical to the concatenation of every golden capture in
#      registry order,
#   3. assert the run went through the fleet (the "fleet of 3 shards"
#      line) and no daemon counted a single misrouted item,
#   4. shut the whole fleet down through the client and assert every
#      daemon exits 0.
#
# Usage: sweep_fleet_e2e.sh <cvliw-sweepd> <cvliw-bench>
#                           <cvliw-sweep-client> <golden-dir>
#
#===----------------------------------------------------------------------===#
set -u

sweepd="$1"
bench="$2"
client="$3"
goldendir="$4"

workdir=$(mktemp -d)
pids=
cleanup() {
  for pid in $pids; do
    kill "$pid" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

for k in 0 1 2; do
  "$sweepd" --port 0 --port-file "$workdir/port$k" --threads 2 \
    --max-batch-rows 8 --shard-id "$k" --shard-count 3 \
    > "$workdir/sweepd$k.log" 2>&1 &
  pids="$pids $!"
done

hostports=
for k in 0 1 2; do
  i=0
  while [ ! -s "$workdir/port$k" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon $k did not become ready" >&2
      cat "$workdir/sweepd$k.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  hp="127.0.0.1:$(cat "$workdir/port$k")"
  eval "hostport$k=\$hp"
  hostports="$hostports${hostports:+,}$hp"
done
echo "fleet up: $hostports"

# Step 2: all sixteen experiments across the 3-shard fleet.
"$bench" --all --shards "$hostports" \
  > "$workdir/all.out" 2> "$workdir/all.err" || {
  echo "FAIL: cvliw-bench --all --shards failed" >&2
  cat "$workdir/all.err" >&2
  exit 1
}
grep -v '^sweep: ' "$workdir/all.out" > "$workdir/all.filtered"

first=1
for name in $("$bench" --list-names); do
  [ "$first" = 1 ] || echo
  first=0
  cat "$goldendir/$name.golden"
done > "$workdir/expected"

if ! diff "$workdir/expected" "$workdir/all.filtered" >&2; then
  echo "FAIL: fleet --all output differs from the golden captures" >&2
  exit 1
fi
echo "OK: all experiments through the 3-shard fleet match their goldens"

# Step 3: the fleet path was taken, and consistent hashing agreed on
# both sides — zero misrouted items on every shard, which also pins the
# shard identity lines in the status output.
grep -q '^sweep: fleet of 3 shards:' "$workdir/all.out" || {
  echo "FAIL: no fleet summary line — the run bypassed fleet mode" >&2
  grep '^sweep: ' "$workdir/all.out" >&2
  exit 1
}
for k in 0 1 2; do
  eval "hp=\$hostport$k"
  "$client" "$hp" status > "$workdir/status$k.out" || exit 1
  grep -q "^shard id:             $k\$" "$workdir/status$k.out" || {
    echo "FAIL: shard $k status lacks its shard id" >&2
    cat "$workdir/status$k.out" >&2
    exit 1
  }
  grep -q '^shard count:          3$' "$workdir/status$k.out" || {
    echo "FAIL: shard $k status lacks the fleet size" >&2
    cat "$workdir/status$k.out" >&2
    exit 1
  }
  grep -q '^misrouted items:      0$' "$workdir/status$k.out" || {
    echo "FAIL: shard $k counted misrouted items" >&2
    cat "$workdir/status$k.out" >&2
    exit 1
  }
done
echo "OK: fleet route agreement (0 misrouted items on all 3 shards)"

# Step 4: one client-driven shutdown for the whole fleet.
"$client" "$hostports" shutdown || exit 1
rc_all=0
for pid in $pids; do
  wait "$pid" || rc_all=1
done
pids=
if [ "$rc_all" -ne 0 ]; then
  echo "FAIL: a daemon exited non-zero" >&2
  cat "$workdir"/sweepd*.log >&2
  exit 1
fi
echo "OK: 3-shard fleet end-to-end (clean shutdown)"
