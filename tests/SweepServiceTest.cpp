//===- tests/SweepServiceTest.cpp - sweep service daemon tests ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/SweepService.h"

#include "cvliw/net/Frame.h"
#include "cvliw/net/SweepClient.h"
#include "cvliw/pipeline/ExperimentRegistry.h"
#include "cvliw/pipeline/ResultCache.h"
#include "cvliw/pipeline/SweepEngine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <thread>

using namespace cvliw;

namespace {

BenchmarkSpec tinyBenchmark(const std::string &Name, uint64_t SeedBase) {
  BenchmarkSpec B;
  B.Name = Name;
  B.InterleaveBytes = 4;
  LoopSpec L;
  L.Name = Name + ".loop0";
  L.ProfileTrip = 100;
  L.ExecTrip = 200;
  L.Chains = {ChainSpec{1, 1, 2, 1, true}};
  L.ConsistentLoads = 3;
  L.ConsistentStores = 1;
  L.SeedBase = SeedBase;
  B.Loops.push_back(L);
  LoopSpec L2 = L;
  L2.Name = Name + ".loop1";
  L2.SeedBase = SeedBase + 13;
  L2.Weight = 0.25;
  B.Loops.push_back(L2);
  return B;
}

SweepGrid tinyGrid() {
  SweepGrid Grid;
  Grid.Schemes = crossSchemes(
      {CoherencePolicy::Baseline, CoherencePolicy::MDC,
       CoherencePolicy::DDGT},
      {ClusterHeuristic::PrefClus});
  Grid.Benchmarks = {tinyBenchmark("alpha", 7), tinyBenchmark("beta", 11)};
  return Grid;
}

std::string serialCsv(const SweepGrid &Grid) {
  ResultCache Cold;
  SweepEngine Engine(Grid, /*Threads=*/1);
  Engine.setCache(&Cold);
  Engine.run();
  std::ostringstream OS;
  Engine.writeCsv(OS);
  return OS.str();
}

std::string csvOfRows(const SweepGrid &Grid, std::vector<SweepRow> Rows) {
  SweepEngine Engine(Grid, /*Threads=*/1);
  Engine.adoptRows(std::move(Rows));
  std::ostringstream OS;
  Engine.writeCsv(OS);
  return OS.str();
}

/// A running service on an ephemeral port with its own private cache
/// (tests must not warm the process-wide cache other tests observe).
struct ServiceFixture {
  ResultCache Cache;
  SweepService Service;
  std::string HostPort;

  explicit ServiceFixture(size_t MaxFrameBytes = DefaultMaxFrameBytes)
      : Service(makeConfig(Cache, MaxFrameBytes)) {
    std::string Error;
    EXPECT_TRUE(Service.start(Error)) << Error;
    HostPort = "127.0.0.1:" + std::to_string(Service.port());
  }

  static SweepServiceConfig makeConfig(ResultCache &Cache,
                                       size_t MaxFrameBytes) {
    SweepServiceConfig Config;
    Config.Port = 0;
    Config.Threads = 3;
    Config.MaxFrameBytes = MaxFrameBytes;
    Config.Cache = &Cache;
    return Config;
  }
};

} // namespace

TEST(SweepService, PingAndStatus) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Client.ping(Error)) << Error;

  JsonValue Status;
  ASSERT_TRUE(Client.status(Status, Error)) << Error;
  EXPECT_EQ(Status.u64("threads"), 3u);
  EXPECT_EQ(Status.u64("grids_served"), 0u);
  const JsonValue &Cache = Status.at("cache");
  EXPECT_EQ(Cache.u64("entries"), 0u);
  EXPECT_EQ(Cache.u64("hits"), 0u);
}

TEST(SweepService, RemoteSweepMatchesSerialByteForByte) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Points, tinyGrid().size());
  EXPECT_EQ(Stats.CacheMisses, 12u) << "6 points x 2 loops, cold cache";

  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // Same grid again: the daemon's cache is warm now.
  std::vector<SweepRow> Rows2;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows2, Stats, Error)) << Error;
  EXPECT_EQ(Stats.CacheHits, 12u);
  EXPECT_EQ(Stats.CacheMisses, 0u);
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows2)),
            serialCsv(tinyGrid()));

  // And the daemon's status reflects the served work.
  JsonValue Status;
  ASSERT_TRUE(Client.status(Status, Error)) << Error;
  EXPECT_EQ(Status.u64("grids_served"), 2u);
  EXPECT_EQ(Status.at("cache").u64("entries"), 12u);
  EXPECT_GT(Status.at("cache").u64("bytes"), 0u);
}

TEST(SweepService, TwoConcurrentClientsGetSerialIdenticalResults) {
  ServiceFixture F;

  // Different grids (disjoint seeds) so the two sweeps genuinely
  // interleave distinct work items on the shared pool.
  SweepGrid GridA = tinyGrid();
  SweepGrid GridB = tinyGrid();
  GridB.Benchmarks = {tinyBenchmark("gamma", 23),
                      tinyBenchmark("delta", 29)};

  std::string CsvA, CsvB, ErrorA, ErrorB;
  bool OkA = false, OkB = false;
  auto RunClient = [&](const SweepGrid &Grid, std::string &Csv,
                       std::string &Error, bool &Ok) {
    SweepClient Client;
    if (!Client.connect(F.HostPort, Error))
      return;
    std::vector<SweepRow> Rows;
    RemoteSweepStats Stats;
    if (!Client.runGrid(Grid, Rows, Stats, Error))
      return;
    Csv = csvOfRows(Grid, std::move(Rows));
    Ok = true;
  };

  std::thread TA(
      [&] { RunClient(GridA, CsvA, ErrorA, OkA); });
  std::thread TB(
      [&] { RunClient(GridB, CsvB, ErrorB, OkB); });
  TA.join();
  TB.join();

  ASSERT_TRUE(OkA) << ErrorA;
  ASSERT_TRUE(OkB) << ErrorB;
  // Byte-identical to a cold serial evaluation of each grid: concurrent
  // scheduling on the shared pool leaks into neither result.
  EXPECT_EQ(CsvA, serialCsv(GridA));
  EXPECT_EQ(CsvB, serialCsv(GridB));
  EXPECT_EQ(F.Service.gridsServed(), 2u);
}

TEST(SweepService, MalformedFrameGetsErrorResponseAndDaemonStaysUp) {
  ServiceFixture F;
  SweepClient Bad;
  std::string Error;
  ASSERT_TRUE(Bad.connect(F.HostPort, Error)) << Error;

  // 8 garbage bytes: a complete header with the wrong magic.
  std::string Response;
  ASSERT_TRUE(Bad.rawRequest("GARBAGE!", Response, Error)) << Error;
  EXPECT_NE(Response.find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(Response.find("malformed"), std::string::npos) << Response;

  // The offending connection is dropped, the daemon is not.
  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
  EXPECT_EQ(F.Service.protocolErrors(), 1u);
}

TEST(SweepService, OversizedFrameGetsErrorResponseAndDaemonStaysUp) {
  ServiceFixture F(/*MaxFrameBytes=*/1024);
  SweepClient Bad;
  std::string Error;
  ASSERT_TRUE(Bad.connect(F.HostPort, Error)) << Error;

  // A valid header declaring a 1 MiB payload against a 1 KiB limit;
  // no payload bytes need follow — rejection happens on the header.
  std::string Header(FrameMagic, 4);
  Header += '\x00';
  Header += '\x10';
  Header += '\x00';
  Header += '\x00';
  std::string Response;
  ASSERT_TRUE(Bad.rawRequest(Header, Response, Error)) << Error;
  EXPECT_NE(Response.find("oversized"), std::string::npos) << Response;

  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
}

TEST(SweepService, TruncatedFrameGetsErrorResponseAndDaemonStaysUp) {
  ServiceFixture F;
  std::string Host, Error;
  uint16_t Port = 0;
  ASSERT_TRUE(splitHostPort(F.HostPort, Host, Port, Error));
  Socket Conn = connectTo(Host, Port, Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // Header promises 64 payload bytes; send 5 and half-close, so the
  // daemon sees EOF mid-payload but can still answer on our read side.
  unsigned char Header[8] = {0};
  std::memcpy(Header, FrameMagic, 4);
  Header[7] = 64;
  ASSERT_TRUE(Conn.sendAll(Header, sizeof(Header)));
  ASSERT_TRUE(Conn.sendAll("trunc", 5));
  Conn.shutdownWrite();

  std::string Response;
  ASSERT_EQ(readFrame(Conn, Response), FrameStatus::Ok);
  EXPECT_NE(Response.find("truncated"), std::string::npos) << Response;

  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
}

TEST(SweepService, BadJsonAndBadGridAreRejected) {
  ServiceFixture F;
  std::string Error;

  {
    SweepClient Client;
    ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
    std::string Frame(FrameMagic, 4);
    Frame += '\x00';
    Frame += '\x00';
    Frame += '\x00';
    Frame += '\x08';
    Frame += "not json";
    std::string Response;
    ASSERT_TRUE(Client.rawRequest(Frame, Response, Error)) << Error;
    EXPECT_NE(Response.find("bad JSON"), std::string::npos) << Response;
  }
  {
    // Well-formed JSON, malformed grid: the decoder's JsonError comes
    // back as an error response instead of killing the daemon.
    SweepClient Client;
    ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
    std::string Payload = "{\"type\":\"sweep\",\"grid\":{}}";
    std::string Frame(FrameMagic, 4);
    Frame += '\x00';
    Frame += '\x00';
    Frame += '\x00';
    Frame += static_cast<char>(Payload.size());
    Frame += Payload;
    std::string Response;
    ASSERT_TRUE(Client.rawRequest(Frame, Response, Error)) << Error;
    EXPECT_NE(Response.find("bad grid"), std::string::npos) << Response;
  }

  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
}

TEST(SweepService, UnknownRequestTypeKeepsConnectionUsable) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::string Payload = "{\"type\":\"frobnicate\"}";
  std::string Frame(FrameMagic, 4);
  Frame += '\x00';
  Frame += '\x00';
  Frame += '\x00';
  Frame += static_cast<char>(Payload.size());
  Frame += Payload;
  std::string Response;
  ASSERT_TRUE(Client.rawRequest(Frame, Response, Error)) << Error;
  EXPECT_NE(Response.find("unknown request type"), std::string::npos);

  // Same connection still serves valid requests.
  EXPECT_TRUE(Client.ping(Error)) << Error;
}

TEST(SweepService, ShutdownRequestUnblocksWaiters) {
  ServiceFixture F;
  std::thread Waiter([&] { F.Service.waitForShutdown(); });

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Client.shutdownServer(Error)) << Error;
  Waiter.join();
  EXPECT_TRUE(F.Service.shutdownRequested());
  F.Service.stop();
}

TEST(SweepService, DriverRemoteModeRunsSweepAgainstDaemon) {
  // The full --remote path the bench drivers use: runSweep() connects,
  // adopts the daemon's rows, and --verify-serial cross-checks them
  // against a local single-threaded recomputation byte-for-byte.
  ServiceFixture F;

  SweepEngine Engine(tinyGrid());
  SweepRunOptions Options;
  Options.Remote = F.HostPort;
  Options.VerifySerial = true;

  std::ostringstream Log;
  ASSERT_TRUE(runSweep(Engine, Options, Log));
  EXPECT_NE(Log.str().find("sweep: remote " + F.HostPort),
            std::string::npos)
      << Log.str();
  EXPECT_NE(Log.str().find("serial re-run matches byte-for-byte"),
            std::string::npos)
      << Log.str();
  EXPECT_EQ(Engine.run().size(), tinyGrid().size())
      << "adopted rows satisfy later run() calls";
}

TEST(SweepService, RunExperimentUnknownNameErrorsButKeepsServing) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  EXPECT_FALSE(Client.runExperiment("no_such_experiment",
                                    ExperimentOverrides{}, {}, GridRows,
                                    Stats, Error));
  EXPECT_NE(Error.find("unknown experiment 'no_such_experiment'"),
            std::string::npos)
      << Error;

  // A semantic miss, not protocol garbage: the same connection keeps
  // working, and the daemon never counted a protocol error.
  EXPECT_TRUE(Client.ping(Error)) << Error;
  EXPECT_EQ(F.Service.protocolErrors(), 0u);
  EXPECT_EQ(F.Service.experimentsServed(), 0u);

  // A second client sees a healthy daemon too.
  SweepClient Second;
  ASSERT_TRUE(Second.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Second.ping(Error)) << Error;
}

TEST(SweepService, RunExperimentByNameMatchesLocalExpansion) {
  // table2 carries the registry's cheapest real grid; the daemon's
  // server-side expansion must reproduce, byte for byte, what a local
  // run of the same registered grid computes.
  const ExperimentSpec *Spec = ExperimentRegistry::global().find("table2");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 1u);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Grids[0].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("table2", ExperimentOverrides{},
                                   Expected, GridRows, Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 1u);
  EXPECT_EQ(Stats.Grids, 1u);
  EXPECT_EQ(Stats.Points, Grids[0].Grid.size());
  EXPECT_EQ(F.Service.experimentsServed(), 1u);

  EXPECT_EQ(csvOfRows(Grids[0].Grid, std::move(GridRows[0])),
            serialCsv(Grids[0].Grid));
}

TEST(SweepService, RunExperimentAppliesOverridesServerSide) {
  const ExperimentSpec *Spec = ExperimentRegistry::global().find("table2");
  ASSERT_NE(Spec, nullptr);
  SweepGrid Overridden = Spec->BuildGrids()[0].Grid;
  ExperimentOverrides Overrides;
  Overrides.HasBaseSeed = true;
  Overrides.BaseSeed = 0xfeedface;
  applyOverrides(Overridden, Overrides);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Overridden};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("table2", Overrides, Expected, GridRows,
                                   Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 1u);

  // The daemon applied the same override: its rows serialize exactly
  // like a local run of the overridden grid (seed column included).
  EXPECT_EQ(csvOfRows(Overridden, std::move(GridRows[0])),
            serialCsv(Overridden));
}

TEST(SweepService, RunExperimentServesMultiGridExperiments) {
  // hardware_vs_software is the one two-grid experiment: every grid's
  // rows must come back tagged and complete.
  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 2u);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected,
                                   GridRows, Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  EXPECT_EQ(Stats.Grids, 2u);
  EXPECT_EQ(Stats.Points, Grids[0].Grid.size() + Grids[1].Grid.size());
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}
