//===- tests/SweepServiceTest.cpp - sweep service daemon tests ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/SweepService.h"

#include "cvliw/net/BinaryCodec.h"
#include "cvliw/net/FleetClient.h"
#include "cvliw/net/Frame.h"
#include "cvliw/net/ShardMap.h"
#include "cvliw/net/SweepClient.h"
#include "cvliw/net/WireFormat.h"
#include "cvliw/pipeline/ExperimentRegistry.h"
#include "cvliw/pipeline/ResultCache.h"
#include "cvliw/pipeline/SweepEngine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>

using namespace cvliw;

namespace {

BenchmarkSpec tinyBenchmark(const std::string &Name, uint64_t SeedBase) {
  BenchmarkSpec B;
  B.Name = Name;
  B.InterleaveBytes = 4;
  LoopSpec L;
  L.Name = Name + ".loop0";
  L.ProfileTrip = 100;
  L.ExecTrip = 200;
  L.Chains = {ChainSpec{1, 1, 2, 1, true}};
  L.ConsistentLoads = 3;
  L.ConsistentStores = 1;
  L.SeedBase = SeedBase;
  B.Loops.push_back(L);
  LoopSpec L2 = L;
  L2.Name = Name + ".loop1";
  L2.SeedBase = SeedBase + 13;
  L2.Weight = 0.25;
  B.Loops.push_back(L2);
  return B;
}

SweepGrid tinyGrid() {
  SweepGrid Grid;
  Grid.Schemes = crossSchemes(
      {CoherencePolicy::Baseline, CoherencePolicy::MDC,
       CoherencePolicy::DDGT},
      {ClusterHeuristic::PrefClus});
  Grid.Benchmarks = {tinyBenchmark("alpha", 7), tinyBenchmark("beta", 11)};
  return Grid;
}

std::string serialCsv(const SweepGrid &Grid) {
  ResultCache Cold;
  SweepEngine Engine(Grid, /*Threads=*/1);
  Engine.setCache(&Cold);
  Engine.run();
  std::ostringstream OS;
  Engine.writeCsv(OS);
  return OS.str();
}

std::string csvOfRows(const SweepGrid &Grid, std::vector<SweepRow> Rows) {
  SweepEngine Engine(Grid, /*Threads=*/1);
  Engine.adoptRows(std::move(Rows));
  std::ostringstream OS;
  Engine.writeCsv(OS);
  return OS.str();
}

/// A running service on an ephemeral port with its own private cache
/// (tests must not warm the process-wide cache other tests observe).
struct ServiceFixture {
  ResultCache Cache;
  SweepService Service;
  std::string HostPort;

  explicit ServiceFixture(size_t MaxFrameBytes = DefaultMaxFrameBytes)
      : ServiceFixture(makeConfig(MaxFrameBytes)) {}

  explicit ServiceFixture(SweepServiceConfig Config)
      : Service(withCache(std::move(Config), Cache)) {
    std::string Error;
    EXPECT_TRUE(Service.start(Error)) << Error;
    HostPort = "127.0.0.1:" + std::to_string(Service.port());
  }

  static SweepServiceConfig makeConfig(size_t MaxFrameBytes) {
    SweepServiceConfig Config;
    Config.Port = 0;
    Config.Threads = 3;
    Config.MaxFrameBytes = MaxFrameBytes;
    return Config;
  }

  static SweepServiceConfig withCache(SweepServiceConfig Config,
                                      ResultCache &PrivateCache) {
    Config.Cache = &PrivateCache;
    return Config;
  }
};

} // namespace

TEST(SweepService, ConnectRetriesBackOffBeforeGivingUp) {
  // Grab an ephemeral port, then close the listener: the address is
  // now (almost certainly) refusing connections. Three bounded
  // attempts must actually sleep between tries (50 ms then 100 ms of
  // exponential backoff) before failing.
  std::string HostPort;
  {
    ServiceFixture F;
    HostPort = F.HostPort;
  }
  SweepClient Client;
  std::string Error;
  const auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Client.connect(HostPort, Error, /*Retries=*/3));
  const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - Start);
  EXPECT_FALSE(Error.empty());
  EXPECT_GE(Elapsed.count(), 140) << "no backoff between attempts";
}

TEST(SweepService, PingAndStatus) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Client.ping(Error)) << Error;

  JsonValue Status;
  ASSERT_TRUE(Client.status(Status, Error)) << Error;
  EXPECT_EQ(Status.u64("threads"), 3u);
  EXPECT_EQ(Status.u64("grids_served"), 0u);
  const JsonValue &Cache = Status.at("cache");
  EXPECT_EQ(Cache.u64("entries"), 0u);
  EXPECT_EQ(Cache.u64("hits"), 0u);
}

TEST(SweepService, RemoteSweepMatchesSerialByteForByte) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Points, tinyGrid().size());
  EXPECT_EQ(Stats.CacheMisses, 12u) << "6 points x 2 loops, cold cache";

  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // Same grid again: the daemon's cache is warm now.
  std::vector<SweepRow> Rows2;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows2, Stats, Error)) << Error;
  EXPECT_EQ(Stats.CacheHits, 12u);
  EXPECT_EQ(Stats.CacheMisses, 0u);
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows2)),
            serialCsv(tinyGrid()));

  // And the daemon's status reflects the served work.
  JsonValue Status;
  ASSERT_TRUE(Client.status(Status, Error)) << Error;
  EXPECT_EQ(Status.u64("grids_served"), 2u);
  EXPECT_EQ(Status.at("cache").u64("entries"), 12u);
  EXPECT_GT(Status.at("cache").u64("bytes"), 0u);
}

TEST(SweepService, TwoConcurrentClientsGetSerialIdenticalResults) {
  ServiceFixture F;

  // Different grids (disjoint seeds) so the two sweeps genuinely
  // interleave distinct work items on the shared pool.
  SweepGrid GridA = tinyGrid();
  SweepGrid GridB = tinyGrid();
  GridB.Benchmarks = {tinyBenchmark("gamma", 23),
                      tinyBenchmark("delta", 29)};

  std::string CsvA, CsvB, ErrorA, ErrorB;
  bool OkA = false, OkB = false;
  auto RunClient = [&](const SweepGrid &Grid, std::string &Csv,
                       std::string &Error, bool &Ok) {
    SweepClient Client;
    if (!Client.connect(F.HostPort, Error))
      return;
    std::vector<SweepRow> Rows;
    RemoteSweepStats Stats;
    if (!Client.runGrid(Grid, Rows, Stats, Error))
      return;
    Csv = csvOfRows(Grid, std::move(Rows));
    Ok = true;
  };

  std::thread TA(
      [&] { RunClient(GridA, CsvA, ErrorA, OkA); });
  std::thread TB(
      [&] { RunClient(GridB, CsvB, ErrorB, OkB); });
  TA.join();
  TB.join();

  ASSERT_TRUE(OkA) << ErrorA;
  ASSERT_TRUE(OkB) << ErrorB;
  // Byte-identical to a cold serial evaluation of each grid: concurrent
  // scheduling on the shared pool leaks into neither result.
  EXPECT_EQ(CsvA, serialCsv(GridA));
  EXPECT_EQ(CsvB, serialCsv(GridB));
  EXPECT_EQ(F.Service.gridsServed(), 2u);
}

TEST(SweepService, MalformedFrameGetsErrorResponseAndDaemonStaysUp) {
  ServiceFixture F;
  SweepClient Bad;
  std::string Error;
  ASSERT_TRUE(Bad.connect(F.HostPort, Error)) << Error;

  // 8 garbage bytes: a complete header with the wrong magic.
  std::string Response;
  ASSERT_TRUE(Bad.rawRequest("GARBAGE!", Response, Error)) << Error;
  EXPECT_NE(Response.find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(Response.find("malformed"), std::string::npos) << Response;

  // The offending connection is dropped, the daemon is not.
  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
  EXPECT_EQ(F.Service.protocolErrors(), 1u);
}

TEST(SweepService, OversizedFrameGetsErrorResponseAndDaemonStaysUp) {
  ServiceFixture F(/*MaxFrameBytes=*/1024);
  SweepClient Bad;
  std::string Error;
  ASSERT_TRUE(Bad.connect(F.HostPort, Error)) << Error;

  // A valid header declaring a 1 MiB payload against a 1 KiB limit;
  // no payload bytes need follow — rejection happens on the header.
  std::string Header(FrameMagic, 4);
  Header += '\x00';
  Header += '\x10';
  Header += '\x00';
  Header += '\x00';
  std::string Response;
  ASSERT_TRUE(Bad.rawRequest(Header, Response, Error)) << Error;
  EXPECT_NE(Response.find("oversized"), std::string::npos) << Response;

  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
}

TEST(SweepService, TruncatedFrameGetsErrorResponseAndDaemonStaysUp) {
  ServiceFixture F;
  std::string Host, Error;
  uint16_t Port = 0;
  ASSERT_TRUE(splitHostPort(F.HostPort, Host, Port, Error));
  Socket Conn = connectTo(Host, Port, Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // Header promises 64 payload bytes; send 5 and half-close, so the
  // daemon sees EOF mid-payload but can still answer on our read side.
  unsigned char Header[8] = {0};
  std::memcpy(Header, FrameMagic, 4);
  Header[7] = 64;
  ASSERT_TRUE(Conn.sendAll(Header, sizeof(Header)));
  ASSERT_TRUE(Conn.sendAll("trunc", 5));
  Conn.shutdownWrite();

  std::string Response;
  ASSERT_EQ(readFrame(Conn, Response), FrameStatus::Ok);
  EXPECT_NE(Response.find("truncated"), std::string::npos) << Response;

  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
}

TEST(SweepService, BadJsonAndBadGridAreRejected) {
  ServiceFixture F;
  std::string Error;

  {
    SweepClient Client;
    ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
    std::string Frame(FrameMagic, 4);
    Frame += '\x00';
    Frame += '\x00';
    Frame += '\x00';
    Frame += '\x08';
    Frame += "not json";
    std::string Response;
    ASSERT_TRUE(Client.rawRequest(Frame, Response, Error)) << Error;
    EXPECT_NE(Response.find("bad JSON"), std::string::npos) << Response;
  }
  {
    // Well-formed JSON, malformed grid: the decoder's JsonError comes
    // back as an error response instead of killing the daemon.
    SweepClient Client;
    ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
    std::string Payload = "{\"type\":\"sweep\",\"grid\":{}}";
    std::string Frame(FrameMagic, 4);
    Frame += '\x00';
    Frame += '\x00';
    Frame += '\x00';
    Frame += static_cast<char>(Payload.size());
    Frame += Payload;
    std::string Response;
    ASSERT_TRUE(Client.rawRequest(Frame, Response, Error)) << Error;
    EXPECT_NE(Response.find("bad grid"), std::string::npos) << Response;
  }

  SweepClient Good;
  ASSERT_TRUE(Good.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Good.ping(Error)) << Error;
}

TEST(SweepService, UnknownRequestTypeKeepsConnectionUsable) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::string Payload = "{\"type\":\"frobnicate\"}";
  std::string Frame(FrameMagic, 4);
  Frame += '\x00';
  Frame += '\x00';
  Frame += '\x00';
  Frame += static_cast<char>(Payload.size());
  Frame += Payload;
  std::string Response;
  ASSERT_TRUE(Client.rawRequest(Frame, Response, Error)) << Error;
  EXPECT_NE(Response.find("unknown request type"), std::string::npos);

  // Same connection still serves valid requests.
  EXPECT_TRUE(Client.ping(Error)) << Error;
}

TEST(SweepService, ShutdownRequestUnblocksWaiters) {
  ServiceFixture F;
  std::thread Waiter([&] { F.Service.waitForShutdown(); });

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Client.shutdownServer(Error)) << Error;
  Waiter.join();
  EXPECT_TRUE(F.Service.shutdownRequested());
  F.Service.stop();
}

TEST(SweepService, DriverRemoteModeRunsSweepAgainstDaemon) {
  // The full --remote path the bench drivers use: runSweep() connects,
  // adopts the daemon's rows, and --verify-serial cross-checks them
  // against a local single-threaded recomputation byte-for-byte.
  ServiceFixture F;

  SweepEngine Engine(tinyGrid());
  SweepRunOptions Options;
  Options.Remote = F.HostPort;
  Options.VerifySerial = true;

  std::ostringstream Log;
  ASSERT_TRUE(runSweep(Engine, Options, Log));
  EXPECT_NE(Log.str().find("sweep: remote " + F.HostPort),
            std::string::npos)
      << Log.str();
  EXPECT_NE(Log.str().find("serial re-run matches byte-for-byte"),
            std::string::npos)
      << Log.str();
  EXPECT_EQ(Engine.run().size(), tinyGrid().size())
      << "adopted rows satisfy later run() calls";
}

TEST(SweepService, RunExperimentUnknownNameErrorsButKeepsServing) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  EXPECT_FALSE(Client.runExperiment("no_such_experiment",
                                    ExperimentOverrides{}, {}, GridRows,
                                    Stats, Error));
  EXPECT_NE(Error.find("unknown experiment 'no_such_experiment'"),
            std::string::npos)
      << Error;

  // A semantic miss, not protocol garbage: the same connection keeps
  // working, and the daemon never counted a protocol error.
  EXPECT_TRUE(Client.ping(Error)) << Error;
  EXPECT_EQ(F.Service.protocolErrors(), 0u);
  EXPECT_EQ(F.Service.experimentsServed(), 0u);

  // A second client sees a healthy daemon too.
  SweepClient Second;
  ASSERT_TRUE(Second.connect(F.HostPort, Error)) << Error;
  EXPECT_TRUE(Second.ping(Error)) << Error;
}

TEST(SweepService, RunExperimentByNameMatchesLocalExpansion) {
  // table2 carries the registry's cheapest real grid; the daemon's
  // server-side expansion must reproduce, byte for byte, what a local
  // run of the same registered grid computes.
  const ExperimentSpec *Spec = ExperimentRegistry::global().find("table2");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 1u);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Grids[0].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("table2", ExperimentOverrides{},
                                   Expected, GridRows, Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 1u);
  EXPECT_EQ(Stats.Grids, 1u);
  EXPECT_EQ(Stats.Points, Grids[0].Grid.size());
  EXPECT_EQ(F.Service.experimentsServed(), 1u);

  EXPECT_EQ(csvOfRows(Grids[0].Grid, std::move(GridRows[0])),
            serialCsv(Grids[0].Grid));
}

TEST(SweepService, RunExperimentAppliesOverridesServerSide) {
  const ExperimentSpec *Spec = ExperimentRegistry::global().find("table2");
  ASSERT_NE(Spec, nullptr);
  SweepGrid Overridden = Spec->BuildGrids()[0].Grid;
  ExperimentOverrides Overrides;
  Overrides.HasBaseSeed = true;
  Overrides.BaseSeed = 0xfeedface;
  applyOverrides(Overridden, Overrides);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Overridden};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("table2", Overrides, Expected, GridRows,
                                   Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 1u);

  // The daemon applied the same override: its rows serialize exactly
  // like a local run of the overridden grid (seed column included).
  EXPECT_EQ(csvOfRows(Overridden, std::move(GridRows[0])),
            serialCsv(Overridden));
}

//===----------------------------------------------------------------------===//
// Session protocol: pipelining, batching, fairness, v1 compatibility
//===----------------------------------------------------------------------===//

TEST(SweepService, PipelinesThreeConcurrentExperimentRequests) {
  // The pipelining acceptance gate: one persistent connection, three
  // run_experiment requests submitted before ANY response is read,
  // every result byte-identical to a serial evaluation.
  const ExperimentSpec *Spec = ExperimentRegistry::global().find("table2");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 1u);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(Client.pipeliningGranted());

  std::vector<const SweepGrid *> Expected{&Grids[0].Grid};
  uint64_t Ids[3] = {0, 0, 0};
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Client.submitExperiment("table2", ExperimentOverrides{},
                                        Expected, Ids[I], Error))
        << Error;
  EXPECT_EQ(Client.pendingRequests(), 3u)
      << "all three requests in flight before the first poll";

  const std::string Serial = serialCsv(Grids[0].Grid);
  for (int I = 0; I != 3; ++I) {
    ASSERT_TRUE(Client.wait(Ids[I], Error)) << Error;
    std::vector<std::vector<SweepRow>> GridRows;
    RemoteSweepStats Stats;
    ASSERT_TRUE(Client.take(Ids[I], GridRows, Stats, Error)) << Error;
    ASSERT_EQ(GridRows.size(), 1u);
    EXPECT_EQ(csvOfRows(Grids[0].Grid, std::move(GridRows[0])), Serial);
  }
  EXPECT_EQ(F.Service.experimentsServed(), 3u);
}

TEST(SweepService, NegotiatedBatchingIsByteIdentical) {
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  // The daemon clamps our 256 to its 4.
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_EQ(Client.negotiatedMaxBatch(), 4u);

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  // Every row of the six-point grid traveled inside a row_batch frame,
  // and batching changed no byte of the result.
  EXPECT_EQ(Stats.RowsBatched, tinyGrid().size());
  EXPECT_GE(Stats.BatchesReceived, 2u) << "6 rows, batches of at most 4";
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
  EXPECT_EQ(F.Service.rowsBatched(), tinyGrid().size());
  EXPECT_EQ(F.Service.batchesSent(), Stats.BatchesReceived);
}

TEST(SweepService, V1ClientWithoutHelloStaysUnbatchedAndUnIded) {
  // The backward-compatibility regression gate: a daemon configured
  // for batching still speaks plain v1 to a client that never says
  // hello — unbatched "row" frames, no "id" members, byte-identical
  // rows for both run_sweep and run_experiment.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 8;
  ServiceFixture F(Config);

  std::string Host, Error;
  uint16_t Port = 0;
  ASSERT_TRUE(splitHostPort(F.HostPort, Host, Port, Error));
  Socket Conn = connectTo(Host, Port, Error);
  ASSERT_TRUE(Conn.valid()) << Error;

  // --- run_sweep, hand-framed exactly like the PR3 client ---
  SweepGrid Grid = tinyGrid();
  JsonValue SweepReq = JsonValue::object();
  SweepReq.set("type", JsonValue::str("sweep"));
  SweepReq.set("grid", gridToJson(Grid));
  ASSERT_TRUE(writeFrame(Conn, SweepReq.dump()));

  std::vector<SweepRow> Rows(Grid.size());
  size_t Received = 0;
  for (;;) {
    std::string Payload;
    ASSERT_EQ(readFrame(Conn, Payload), FrameStatus::Ok);
    JsonValue Message;
    std::string ParseError;
    ASSERT_TRUE(JsonValue::parse(Payload, Message, ParseError))
        << ParseError;
    const std::string &Type = Message.text("type");
    EXPECT_EQ(Message.find("id"), nullptr)
        << "v1 requests carry no id, so responses must not either";
    if (Type == "done") {
      EXPECT_EQ(Message.u64("points"), Grid.size());
      EXPECT_EQ(Message.find("rows_batched"), nullptr)
          << "a v1 done frame keeps the exact v1 shape";
      EXPECT_EQ(Message.find("stages"), nullptr)
          << "the stage breakdown is hello-gated";
      break;
    }
    ASSERT_EQ(Type, "row") << "no row_batch frames without hello";
    SweepRow Row = rowFromJson(Message.at("row"));
    ASSERT_LT(Row.PointIndex, Rows.size());
    Rows[Row.PointIndex] = std::move(Row);
    ++Received;
  }
  EXPECT_EQ(Received, Grid.size());
  EXPECT_EQ(csvOfRows(Grid, std::move(Rows)), serialCsv(Grid));

  // --- run_experiment on the same v1 connection ---
  const ExperimentSpec *Spec = ExperimentRegistry::global().find("table2");
  ASSERT_NE(Spec, nullptr);
  SweepGrid ExpGrid = Spec->BuildGrids()[0].Grid;
  JsonValue ExpReq = JsonValue::object();
  ExpReq.set("type", JsonValue::str("run_experiment"));
  ExpReq.set("name", JsonValue::str("table2"));
  ASSERT_TRUE(writeFrame(Conn, ExpReq.dump()));

  std::vector<SweepRow> ExpRows(ExpGrid.size());
  for (;;) {
    std::string Payload;
    ASSERT_EQ(readFrame(Conn, Payload), FrameStatus::Ok);
    JsonValue Message;
    std::string ParseError;
    ASSERT_TRUE(JsonValue::parse(Payload, Message, ParseError))
        << ParseError;
    const std::string &Type = Message.text("type");
    EXPECT_EQ(Message.find("id"), nullptr);
    if (Type == "done")
      break;
    ASSERT_EQ(Type, "row");
    EXPECT_EQ(Message.u64("grid"), 0u);
    SweepRow Row = rowFromJson(Message.at("row"));
    ASSERT_LT(Row.PointIndex, ExpRows.size());
    ExpRows[Row.PointIndex] = std::move(Row);
  }
  EXPECT_EQ(csvOfRows(ExpGrid, std::move(ExpRows)), serialCsv(ExpGrid));
  EXPECT_EQ(F.Service.rowsBatched(), 0u);
}

TEST(SweepService, OneThreadPoolInterleavesTwoSessionsRoundRobin) {
  // The fairness acceptance gate: a 1-thread pool, two sessions each
  // submitting a grid — neither session may finish entirely before
  // the other starts receiving rows (a FIFO pool would serve session
  // A's whole backlog first).
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.Threads = 1;
  ServiceFixture F(Config);

  SweepGrid GridA = tinyGrid();
  GridA.Benchmarks = {tinyBenchmark("a0", 7), tinyBenchmark("a1", 11),
                      tinyBenchmark("a2", 17), tinyBenchmark("a3", 19)};
  SweepGrid GridB = GridA;
  GridB.Benchmarks = {tinyBenchmark("b0", 23), tinyBenchmark("b1", 29),
                      tinyBenchmark("b2", 31), tinyBenchmark("b3", 37)};

  SweepClient ClientA, ClientB;
  std::string Error;
  ASSERT_TRUE(ClientA.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(ClientB.connect(F.HostPort, Error)) << Error;

  // Both submissions land before either client reads a byte, so both
  // sessions' items are queued concurrently on the single worker.
  uint64_t IdA = 0, IdB = 0;
  ASSERT_TRUE(ClientA.submitGrid(GridA, IdA, Error)) << Error;
  ASSERT_TRUE(ClientB.submitGrid(GridB, IdB, Error)) << Error;

  using Clock = std::chrono::steady_clock;
  struct Arrival {
    Clock::time_point FirstRow, LastRow;
    bool SawRow = false;
    bool Ok = false;
    std::string Error;
  };
  Arrival A, B;
  auto Drain = [](SweepClient &Client, uint64_t Id, Arrival &Out) {
    for (;;) {
      uint64_t CompletedId = 0;
      bool Completed = false;
      if (!Client.poll(CompletedId, Completed, Out.Error))
        return;
      if (Completed) {
        Out.Ok = CompletedId == Id;
        return;
      }
      Out.LastRow = Clock::now();
      if (!Out.SawRow) {
        Out.SawRow = true;
        Out.FirstRow = Out.LastRow;
      }
    }
  };
  std::thread TA([&] { Drain(ClientA, IdA, A); });
  std::thread TB([&] { Drain(ClientB, IdB, B); });
  TA.join();
  TB.join();
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  ASSERT_TRUE(A.SawRow);
  ASSERT_TRUE(B.SawRow);

  // Round-robin draining: each session's first row lands before the
  // other session's last row.
  EXPECT_LT(A.FirstRow, B.LastRow)
      << "session B drained entirely before A started receiving";
  EXPECT_LT(B.FirstRow, A.LastRow)
      << "session A drained entirely before B started receiving";

  // And fairness never bends bytes: both results are still exactly the
  // serial evaluation.
  std::vector<std::vector<SweepRow>> RowsA, RowsB;
  RemoteSweepStats Stats;
  ASSERT_TRUE(ClientA.take(IdA, RowsA, Stats, Error)) << Error;
  ASSERT_TRUE(ClientB.take(IdB, RowsB, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(GridA, std::move(RowsA[0])), serialCsv(GridA));
  EXPECT_EQ(csvOfRows(GridB, std::move(RowsB[0])), serialCsv(GridB));
}

TEST(SweepService, StopDrainsInFlightSweepsToCompletion) {
  // Shutdown-under-load, drain flavor: stop() arrives while a sweep is
  // streaming; the session drains it fully (within the generous
  // default timeout) and the client still collects every row.
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  uint64_t Id = 0;
  ASSERT_TRUE(Client.submitGrid(tinyGrid(), Id, Error)) << Error;

  std::thread Stopper([&] { F.Service.stop(); });
  std::vector<SweepRow> Rows;
  bool GotAll = false;
  {
    // Drain manually: poll to completion, then take.
    std::string PollError;
    for (;;) {
      uint64_t CompletedId = 0;
      bool Completed = false;
      if (!Client.poll(CompletedId, Completed, PollError))
        break;
      if (Completed)
        break;
    }
    std::vector<std::vector<SweepRow>> GridRows;
    RemoteSweepStats Stats;
    if (Client.take(Id, GridRows, Stats, PollError)) {
      Rows = std::move(GridRows[0]);
      GotAll = true;
    }
  }
  Stopper.join();
  ASSERT_TRUE(GotAll) << "drain must deliver the full in-flight sweep";
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}

TEST(SweepService, StopWithZeroDrainTimeoutCancelsPromptly) {
  // Shutdown-under-load, cancel flavor: a 1-thread pool, a large grid,
  // and a zero drain timeout — stop() must return promptly (canceled
  // items sweep through as no-ops) instead of simulating to the end.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.Threads = 1;
  Config.DrainTimeoutSeconds = 0;
  ServiceFixture F(Config);

  SweepGrid Grid = tinyGrid();
  Grid.Benchmarks.clear();
  for (int I = 0; I != 12; ++I)
    Grid.Benchmarks.push_back(
        tinyBenchmark("load" + std::to_string(I), 41 + 2 * I));

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  uint64_t Id = 0;
  ASSERT_TRUE(Client.submitGrid(Grid, Id, Error)) << Error;

  // Wait until the sweep is demonstrably in flight (first row out),
  // then stop.
  uint64_t CompletedId = 0;
  bool Completed = false;
  ASSERT_TRUE(Client.poll(CompletedId, Completed, Error)) << Error;
  F.Service.stop();

  // The client drains whatever the daemon flushed: either the request
  // was canceled (the expected path) or — if the tiny grid won the
  // race — completed. Both must terminate cleanly.
  while (!Completed && Client.poll(CompletedId, Completed, Error)) {
  }
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  if (Completed && Client.take(Id, GridRows, Stats, Error)) {
    EXPECT_EQ(csvOfRows(Grid, std::move(GridRows[0])), serialCsv(Grid));
  } else {
    EXPECT_NE(Error.find("cancel"), std::string::npos)
        << "canceled in-flight sweep should say so: " << Error;
  }
  EXPECT_EQ(F.Service.sessionsOpen(), 0u);
}

TEST(SweepService, StatusPinsSessionAndBatchingKeys) {
  // The per-session metrics contract: these JSON keys are what
  // dashboards (and the CLI client) read — pin them.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  Config.MaxSessionWeight = 4;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(/*MaxBatch=*/4, /*Weight=*/3, Error))
      << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;

  // The worker that enqueued our "done" may still be unwinding when
  // the status query lands; the in-flight gauges settle to zero within
  // moments of it.
  JsonValue Status;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    ASSERT_TRUE(Client.status(Status, Error)) << Error;
    bool Settled = true;
    for (const JsonValue &S : Status.at("sessions").items())
      if (S.u64("in_flight_requests") != 0 || S.u64("in_flight_items") != 0)
        Settled = false;
    if (Settled || std::chrono::steady_clock::now() > Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(Status.u64("max_batch_rows"), 4u);
  EXPECT_EQ(Status.u64("rows_batched"), tinyGrid().size());
  EXPECT_GT(Status.u64("batches_sent"), 0u);

  const JsonValue &SessionArr = Status.at("sessions");
  ASSERT_GE(SessionArr.items().size(), 1u);
  bool FoundSelf = false;
  for (const JsonValue &S : SessionArr.items()) {
    // Every entry carries the full key set.
    (void)S.u64("id");
    (void)S.u64("in_flight_requests");
    (void)S.u64("in_flight_items");
    (void)S.u64("rows_batched");
    (void)S.u64("batches_sent");
    (void)S.u64("weight");
    (void)S.u64("max_batch");
    if (S.u64("rows_batched") == tinyGrid().size()) {
      FoundSelf = true;
      EXPECT_EQ(S.u64("weight"), 3u);
      EXPECT_EQ(S.u64("max_batch"), 4u);
      EXPECT_EQ(S.u64("in_flight_requests"), 0u);
      EXPECT_EQ(S.u64("in_flight_items"), 0u);
    }
  }
  EXPECT_TRUE(FoundSelf)
      << "the querying session's own batching tally must be visible";
}

TEST(SweepService, HelloAfterASweepIsRejectedButConnectionServes) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;

  // Too late: hello must be the connection's first request. The daemon
  // answers with an error frame; negotiate() reports the connection
  // usable with v1 capabilities.
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_EQ(Client.negotiatedMaxBatch(), 1u);
  EXPECT_FALSE(Client.pipeliningGranted());
  EXPECT_TRUE(Client.ping(Error)) << Error;
}

TEST(SweepService, RunExperimentServesMultiGridExperiments) {
  // hardware_vs_software is the one two-grid experiment: every grid's
  // rows must come back tagged and complete.
  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 2u);

  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected,
                                   GridRows, Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  EXPECT_EQ(Stats.Grids, 2u);
  EXPECT_EQ(Stats.Points, Grids[0].Grid.size() + Grids[1].Grid.size());
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}

//===----------------------------------------------------------------------===//
// hello edge cases (v3)
//===----------------------------------------------------------------------===//

namespace {

/// Hand-framed hello; returns the daemon's reply.
JsonValue rawHello(Socket &Conn, JsonValue Hello) {
  EXPECT_TRUE(writeFrame(Conn, Hello.dump()));
  std::string Payload;
  EXPECT_EQ(readFrame(Conn, Payload), FrameStatus::Ok);
  JsonValue Reply;
  std::string ParseError;
  EXPECT_TRUE(JsonValue::parse(Payload, Reply, ParseError)) << ParseError;
  return Reply;
}

Socket rawConnect(const std::string &HostPort) {
  std::string Host, Error;
  uint16_t Port = 0;
  EXPECT_TRUE(splitHostPort(HostPort, Host, Port, Error)) << Error;
  Socket Conn = connectTo(Host, Port, Error);
  EXPECT_TRUE(Conn.valid()) << Error;
  return Conn;
}

} // namespace

TEST(SweepService, HelloZeroMaxBatchIsGrantedOne) {
  // max_batch 0 is a degenerate ask, not an error: the daemon grants
  // the v1-equivalent batch of 1 and the session proceeds.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 8;
  ServiceFixture F(Config);

  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  Hello.set("max_batch", JsonValue::uint(0));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  EXPECT_EQ(Reply.text("type"), "hello_ok");
  EXPECT_EQ(Reply.u64("max_batch"), 1u);
  EXPECT_EQ(Reply.u64("weight"), 1u);
}

TEST(SweepService, HelloAbsentMaxBatchIsGrantedOne) {
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 8;
  ServiceFixture F(Config);

  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  EXPECT_EQ(Reply.text("type"), "hello_ok");
  EXPECT_EQ(Reply.u64("max_batch"), 1u);
}

TEST(SweepService, HelloWeightIsClampedToDaemonMax) {
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxSessionWeight = 2;
  ServiceFixture F(Config);

  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  Hello.set("max_batch", JsonValue::uint(4));
  Hello.set("weight", JsonValue::uint(9));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  EXPECT_EQ(Reply.text("type"), "hello_ok");
  EXPECT_EQ(Reply.u64("weight"), 2u) << "daemon --max-session-weight caps";
  // Every v3 daemon advertises the shard capability, claim or no claim.
  EXPECT_TRUE(Reply.at("shards").asBool());
}

TEST(SweepService, V2ClientAgainstV3DaemonIsByteIdentical) {
  // The pre-fleet client (no shard member anywhere) against the v3
  // daemon: negotiation, batching and rows behave exactly as before.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_EQ(Client.negotiatedMaxBatch(), 4u);

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}

//===----------------------------------------------------------------------===//
// Shard claims and misrouting
//===----------------------------------------------------------------------===//

TEST(SweepService, MisroutedClaimIsRefusedAndCounted) {
  // A positional daemon ("shard 0 of 2") refuses a request claiming to
  // be shard 1, counts the claimed items, and keeps serving.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.ShardId = 0;
  Config.ShardCount = 2;
  ServiceFixture F(Config);

  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  ASSERT_EQ(Reply.text("type"), "hello_ok");
  EXPECT_EQ(Reply.u64("shard_id"), 0u);
  EXPECT_EQ(Reply.u64("shard_count"), 2u);

  ShardMap Map({"127.0.0.1:1", "127.0.0.1:2"});
  SweepGrid Grid = tinyGrid();
  JsonValue Req = JsonValue::object();
  Req.set("type", JsonValue::str("sweep"));
  Req.set("grid", gridToJson(Grid));
  Req.set("shard", shardSpecToJson(ShardSpec{1, Map}));
  ASSERT_TRUE(writeFrame(Conn, Req.dump()));
  std::string Payload;
  ASSERT_EQ(readFrame(Conn, Payload), FrameStatus::Ok);
  JsonValue ErrorReply;
  std::string ParseError;
  ASSERT_TRUE(JsonValue::parse(Payload, ErrorReply, ParseError));
  EXPECT_EQ(ErrorReply.text("type"), "error");

  // The counter tallies only the items the bogus claim would own — the
  // work this daemon refused to duplicate — and never the whole grid
  // (shard 1 of 2 owns a proper subset of the 12 items).
  EXPECT_GT(F.Service.misroutedItems(), 0u);
  EXPECT_LT(F.Service.misroutedItems(), 12u);

  // The connection is still usable, and status pins the v3 keys.
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  JsonValue Status;
  ASSERT_TRUE(Client.status(Status, Error)) << Error;
  EXPECT_EQ(Status.u64("shard_id"), 0u);
  EXPECT_EQ(Status.u64("shard_count"), 2u);
  EXPECT_EQ(Status.u64("misrouted_items"), F.Service.misroutedItems());
}

TEST(SweepService, UnconfiguredDaemonReportsZeroShardIdentity) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  JsonValue Status;
  ASSERT_TRUE(Client.status(Status, Error)) << Error;
  EXPECT_EQ(Status.u64("shard_id"), 0u);
  EXPECT_EQ(Status.u64("shard_count"), 0u);
  EXPECT_EQ(Status.u64("misrouted_items"), 0u);
}

//===----------------------------------------------------------------------===//
// Fleet (FleetClient against in-process daemons)
//===----------------------------------------------------------------------===//

namespace {

/// Three unconfigured in-process daemons (they trust any claim — the
/// FleetClient's hello supplies the map) with private caches.
struct FleetFixture {
  ServiceFixture A, B, C;
  std::vector<std::string> Addrs;
  FleetFixture() : Addrs{A.HostPort, B.HostPort, C.HostPort} {}
};

} // namespace

TEST(SweepService, ThreeShardFleetIsByteIdenticalToSerial) {
  FleetFixture F;
  FleetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.Addrs, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_EQ(Client.shardCount(), 3u);
  EXPECT_EQ(Client.aliveShards(), 3u);

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Points, tinyGrid().size());
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // The items really were split: no single daemon computed the whole
  // grid's 12 loop items (2 shards of 3 could own an empty split only
  // if one shard owned everything).
  size_t Misses = 0;
  for (ServiceFixture *S : {&F.A, &F.B, &F.C}) {
    EXPECT_LT(S->Cache.misses(), 12u)
        << "one shard computed the entire grid";
    Misses += S->Cache.misses();
  }
  EXPECT_EQ(Misses, 12u) << "fleet-wide, every loop item exactly once";
}

TEST(SweepService, FleetServesMultiGridExperimentsByteIdentical) {
  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 2u);

  FleetFixture F;
  FleetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.Addrs, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;

  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected,
                                   GridRows, Stats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  EXPECT_EQ(Stats.Grids, 2u);
  EXPECT_EQ(Stats.Points, Grids[0].Grid.size() + Grids[1].Grid.size());
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}

TEST(SweepService, WarmFleetServesRepeatsFromOwningShardsCache) {
  // Cache affinity across the fleet: rerunning the same grid must hit
  // every item in the owning shard's cache — the fleet-summed hit
  // count equals the grid's loop-item count exactly.
  FleetFixture F;
  FleetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.Addrs, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.CacheHits, 0u);
  EXPECT_EQ(Stats.CacheMisses, 12u);

  std::vector<SweepRow> Rows2;
  RemoteSweepStats Stats2;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows2, Stats2, Error)) << Error;
  EXPECT_EQ(Stats2.CacheHits, 12u)
      << "every repeated item must land on the shard that memoized it";
  EXPECT_EQ(Stats2.CacheMisses, 0u);
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows2)), serialCsv(tinyGrid()));
}

TEST(SweepService, CompletedButUntakenRequestDoesNotStarveTheNext) {
  // Regression: poll()'s death-completion scan sits before the socket
  // reads. A request that completed and was *reported* but not yet
  // taken must not keep satisfying poll() while the caller waits on a
  // different id — that starves the socket reads forever (the daemon
  // stalls on backpressure and the client spins). Pipelined --all runs
  // deadlocked on exactly this.
  ServiceFixture F;
  FleetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect({F.HostPort}, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;

  // A 1-point grid followed by the 6-point grid (disjoint seeds, so no
  // cache hit can collapse the second one's work): the small request
  // finishes while the big one is still streaming.
  SweepGrid Small;
  Small.Schemes = crossSchemes({CoherencePolicy::Baseline},
                               {ClusterHeuristic::PrefClus});
  Small.Benchmarks = {tinyBenchmark("solo", 4001)};
  const SweepGrid Big = tinyGrid();

  uint64_t First = 0, Second = 0;
  ASSERT_TRUE(Client.submitGrid(Small, First, Error)) << Error;
  ASSERT_TRUE(Client.submitGrid(Big, Second, Error)) << Error;
  // Finish the first, leave it untaken, then wait on the second: with
  // the starvation bug this wait() never returns.
  ASSERT_TRUE(Client.wait(First, Error)) << Error;
  ASSERT_TRUE(Client.wait(Second, Error)) << Error;

  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.take(First, GridRows, Stats, Error)) << Error;
  ASSERT_EQ(GridRows.size(), 1u);
  EXPECT_EQ(csvOfRows(Small, std::move(GridRows[0])), serialCsv(Small));
  ASSERT_TRUE(Client.take(Second, GridRows, Stats, Error)) << Error;
  ASSERT_EQ(GridRows.size(), 1u);
  EXPECT_EQ(csvOfRows(Big, std::move(GridRows[0])), serialCsv(Big));
}

TEST(SweepService, SingleShardFleetFallsBackToV1Daemon) {
  // The degenerate 1-shard fleet against a daemon that predates hello:
  // there is no such daemon anymore, but the nearest equivalent is the
  // batching-disabled default, whose hello still answers hello_ok. So
  // instead pin the degenerate case proper: one shard, no claim, rows
  // byte-identical, no fleet machinery visible.
  ServiceFixture F;
  FleetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect({F.HostPort}, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_EQ(Client.shardCount(), 1u);

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.CacheMisses, 12u);
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}

//===----------------------------------------------------------------------===//
// Binary rows (v4)
//===----------------------------------------------------------------------===//

TEST(SweepService, V3HelloGetsNoBinaryKeyAndJsonRowFrames) {
  // The v4 regression gate for v3 clients: a hello that never offers
  // "binary_rows" must get a hello_ok without the key (the exact v3
  // reply shape) and every subsequent row frame as CVW1 JSON.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  Hello.set("max_batch", JsonValue::uint(4));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  ASSERT_EQ(Reply.text("type"), "hello_ok");
  EXPECT_EQ(Reply.find("binary_rows"), nullptr)
      << "a v3 hello must get the exact v3 hello_ok key set";

  SweepGrid Grid = tinyGrid();
  JsonValue Req = JsonValue::object();
  Req.set("type", JsonValue::str("sweep"));
  Req.set("id", JsonValue::uint(1));
  Req.set("grid", gridToJson(Grid));
  ASSERT_TRUE(writeFrame(Conn, Req.dump()));

  std::vector<SweepRow> Rows(Grid.size());
  for (;;) {
    std::string Payload;
    FrameKind Kind = FrameKind::Binary;
    ASSERT_EQ(readFrame(Conn, Payload, Kind), FrameStatus::Ok);
    ASSERT_EQ(Kind, FrameKind::Json)
        << "no CVW2 frames without the binary_rows grant";
    JsonValue Message;
    std::string ParseError;
    ASSERT_TRUE(JsonValue::parse(Payload, Message, ParseError)) << ParseError;
    const std::string &Type = Message.text("type");
    if (Type == "done")
      break;
    ASSERT_EQ(Type, "row_batch");
    for (const JsonValue &Entry : Message.at("rows").items()) {
      SweepRow Row = rowFromJson(Entry.at("row"));
      ASSERT_LT(Row.PointIndex, Rows.size());
      Rows[Row.PointIndex] = std::move(Row);
    }
  }
  EXPECT_EQ(csvOfRows(Grid, std::move(Rows)), serialCsv(Grid));
}

TEST(SweepService, BinaryRowsAreGrantedAndByteIdentical) {
  // The tentpole acceptance gate: a v4 client negotiates binary rows
  // by default, the rows stream as CVW2 frames, and no byte of the
  // result differs from the serial engine.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(Client.binaryRowsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.RowsBatched, tinyGrid().size());
  EXPECT_GT(Stats.BytesReceived, 0u);
  EXPECT_GT(Stats.FramesReceived, 0u);
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // Multi-grid experiments ride the same binary entries (grid tags).
  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats ExpStats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected, GridRows,
                                   ExpStats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}

TEST(SweepService, ClientCanDeclineBinaryRows) {
  // --binary-rows off: the client never offers, the daemon never
  // grants, and the JSON path still produces identical bytes.
  ServiceFixture F;
  SweepClient Client;
  Client.setBinaryRows(false);
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_FALSE(Client.binaryRowsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}

TEST(SweepService, StatusPinsByteCountersAndBufferPoolKeys) {
  // The v4 metrics contract: byte/frame tallies and the writer buffer
  // pool gauges are JSON keys dashboards read — pin them, top-level
  // and per-session.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  ASSERT_TRUE(Client.binaryRowsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;

  // The writer thread counts after the write lands, so the client can
  // observe "done" before the daemon's own tally does — poll until the
  // daemon has accounted at least what this client measured receiving.
  JsonValue Status;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    ASSERT_TRUE(Client.status(Status, Error)) << Error;
    if (Status.u64("bytes_sent") >= Stats.BytesReceived ||
        std::chrono::steady_clock::now() > Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(Status.u64("bytes_sent"), 0u);
  EXPECT_GT(Status.u64("frames_sent"), 0u);
  EXPECT_GT(Status.u64("buffers_allocated"), 0u)
      << "binary batches must come from the writer pool";
  (void)Status.u64("buffers_pooled");
  // The v5 raw/wire split and syscall tally: without compression the
  // two byte counts agree, and the coalescing writer made at least one
  // gather call per frame batch.
  EXPECT_EQ(Status.u64("bytes_sent_raw"), Status.u64("bytes_sent_wire"));
  EXPECT_EQ(Status.u64("bytes_sent_wire"), Status.u64("bytes_sent"));
  EXPECT_GT(Status.u64("writev_calls"), 0u);

  bool FoundSelf = false;
  for (const JsonValue &S : Status.at("sessions").items()) {
    (void)S.u64("bytes_sent");
    (void)S.u64("frames_sent");
    ASSERT_NE(S.find("binary_rows"), nullptr);
    ASSERT_NE(S.find("binary_requests"), nullptr);
    ASSERT_NE(S.find("compress"), nullptr);
    if (S.u64("rows_batched") == tinyGrid().size()) {
      FoundSelf = true;
      EXPECT_TRUE(S.at("binary_rows").asBool());
      EXPECT_TRUE(S.at("binary_requests").asBool())
          << "the v5 client offers binary requests by default";
      EXPECT_FALSE(S.at("compress").asBool())
          << "compression is opt-in";
      EXPECT_GT(S.u64("bytes_sent"), 0u);
      EXPECT_GT(S.u64("frames_sent"), 0u);
    }
  }
  EXPECT_TRUE(FoundSelf);

  // What the daemon says it sent covers what this client measured
  // receiving (plus the negotiation and status exchanges since).
  EXPECT_GE(Status.u64("bytes_sent"), Stats.BytesReceived);
}

TEST(SweepService, BinaryThreeShardFleetIsByteIdenticalToSerial) {
  // The fleet acceptance gate: all three shards grant binary rows and
  // the merged result — partial rows with loop masks riding CVW2
  // entries — is byte-identical to the serial engine.
  FleetFixture F;
  FleetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.Addrs, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(Client.binaryRowsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Points, tinyGrid().size());
  EXPECT_GT(Stats.BytesReceived, 0u);
  EXPECT_GT(Stats.FramesReceived, 0u);
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // Every shard's done frame carried a stage breakdown: the fan-out
  // merge sums them and keeps a per-shard copy for skew inspection.
  EXPECT_FALSE(Stats.Stages.empty());
  EXPECT_EQ(Stats.ShardStages.size(), 3u);

  // And the two-grid experiment through the same binary fleet path.
  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats ExpStats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected, GridRows,
                                   ExpStats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}

//===----------------------------------------------------------------------===//
// Observability: metrics registry, stage breakdowns, slow-request log
//===----------------------------------------------------------------------===//

namespace {

const uint64_t *findStage(const RemoteSweepStats &Stats,
                          const std::string &Key) {
  for (const auto &KV : Stats.Stages)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

} // namespace

TEST(SweepService, MetricsRequestPinsRegistryKeys) {
  // The `metrics` wire contract: one registry snapshot whose counter,
  // gauge and histogram names are keys dashboards read — pin them.
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;

  JsonValue Metrics;
  ASSERT_TRUE(Client.metrics(Metrics, Error)) << Error;
  EXPECT_EQ(Metrics.text("type"), "metrics");

  const JsonValue &Counters = Metrics.at("counters");
  for (const char *Key :
       {"grids_served", "experiments_served", "connections_accepted",
        "protocol_errors", "rows_batched", "batches_sent",
        "misrouted_items", "bytes_sent", "frames_sent",
        "bytes_sent_raw", "bytes_sent_wire", "writev_calls",
        "buffers_allocated", "buffers_pooled"})
    ASSERT_NE(Counters.find(Key), nullptr) << Key;
  EXPECT_EQ(Counters.u64("grids_served"), 1u);
  EXPECT_EQ(Counters.u64("connections_accepted"), 1u);
  EXPECT_EQ(Counters.u64("protocol_errors"), 0u);
  EXPECT_GT(Counters.u64("bytes_sent"), 0u);

  const JsonValue &Gauges = Metrics.at("gauges");
  for (const char *Key :
       {"cache.entries", "cache.bytes", "cache.hits", "cache.misses",
        "cache.evictions", "sessions_open", "threads"})
    ASSERT_NE(Gauges.find(Key), nullptr) << Key;
  EXPECT_EQ(Gauges.u64("threads"), 3u);
  EXPECT_EQ(Gauges.u64("sessions_open"), 1u);
  EXPECT_EQ(Gauges.u64("cache.entries"), 12u);
  EXPECT_EQ(Gauges.u64("cache.misses"), 12u);

  // Every pipeline stage has its histogram from construction (the two
  // engine-side stages are pre-registered so an idle daemon still
  // serves the full key set).
  const JsonValue &Histograms = Metrics.at("histograms");
  for (const char *Key :
       {"stage.request_decode", "stage.grid_expand", "stage.cache_lookup",
        "stage.loop_simulate", "stage.row_encode_json",
        "stage.row_encode_binary", "stage.writer_wait",
        "stage.socket_send", "stage.request_total"})
    ASSERT_NE(Histograms.find(Key), nullptr) << Key;
  EXPECT_EQ(Histograms.at("stage.request_total").u64("count"), 1u);
  // Decode is timed per frame: hello, sweep, and this metrics request.
  EXPECT_EQ(Histograms.at("stage.request_decode").u64("count"), 3u);
  // 6 points x 2 loops, every item looked up and (cold) simulated.
  EXPECT_EQ(Histograms.at("stage.cache_lookup").u64("count"), 12u);
  EXPECT_EQ(Histograms.at("stage.loop_simulate").u64("count"), 12u);
  // The per-histogram key set is pinned by MetricsTest; spot-check the
  // wire copy carries it too.
  const JsonValue &Total = Histograms.at("stage.request_total");
  for (const char *Key :
       {"count", "sum_us", "max_us", "p50_us", "p90_us", "p99_us"})
    ASSERT_NE(Total.find(Key), nullptr) << Key;

  // An idle service still serves the whole registry: fresh fixture,
  // no sweep, same key set.
  ServiceFixture Idle;
  SweepClient IdleClient;
  ASSERT_TRUE(IdleClient.connect(Idle.HostPort, Error)) << Error;
  JsonValue IdleMetrics;
  ASSERT_TRUE(IdleClient.metrics(IdleMetrics, Error)) << Error;
  EXPECT_EQ(IdleMetrics.at("counters").u64("grids_served"), 0u);
  EXPECT_NE(IdleMetrics.at("histograms").find("stage.loop_simulate"),
            nullptr);
  EXPECT_EQ(IdleMetrics.at("histograms").at("stage.request_total")
                .u64("count"),
            0u);
}

TEST(SweepService, DoneFrameStageBreakdownIsHelloGated) {
  // A negotiated session's done frames carry the per-request stage
  // breakdown; a v1 session's never do (the raw-frame v1 test pins the
  // frame shape — this pins the client-side merge).
  ServiceFixture F;
  std::string Error;

  SweepClient Negotiated;
  ASSERT_TRUE(Negotiated.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Negotiated.negotiate(DefaultClientMaxBatch, 1, Error))
      << Error;
  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Negotiated.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  ASSERT_EQ(Stats.Stages.size(), 6u);
  // Insertion order follows the daemon's object order.
  const char *Expected[] = {"decode_us",      "expand_us", "cache_lookup_us",
                            "simulate_us",    "encode_us", "total_us"};
  for (size_t I = 0; I != 6; ++I)
    EXPECT_EQ(Stats.Stages[I].first, Expected[I]);
  const uint64_t *Total = findStage(Stats, "total_us");
  const uint64_t *Simulate = findStage(Stats, "simulate_us");
  ASSERT_NE(Total, nullptr);
  ASSERT_NE(Simulate, nullptr);
  EXPECT_GT(*Simulate, 0u) << "12 cold simulations took some time";
  EXPECT_GT(*Total, 0u);

  // Two grids on one session accumulate (the client merges by key).
  std::vector<SweepRow> Rows2;
  ASSERT_TRUE(Negotiated.runGrid(tinyGrid(), Rows2, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Stages.size(), 6u);

  // No hello, no stages: the v1 done frame has none to merge.
  SweepClient Plain;
  ASSERT_TRUE(Plain.connect(F.HostPort, Error)) << Error;
  std::vector<SweepRow> PlainRows;
  RemoteSweepStats PlainStats;
  ASSERT_TRUE(Plain.runGrid(tinyGrid(), PlainRows, PlainStats, Error))
      << Error;
  EXPECT_TRUE(PlainStats.Stages.empty());
}

TEST(SweepService, SlowRequestLogCarriesStageBreakdown) {
  // An artificially slow grid over a 1 ms threshold must warn exactly
  // once on stderr, with the per-stage breakdown inline.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.SlowRequestMs = 1;
  ServiceFixture F(Config);

  SweepGrid Slow = tinyGrid();
  for (BenchmarkSpec &B : Slow.Benchmarks)
    for (LoopSpec &L : B.Loops)
      L.ExecTrip = 20000;

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::ostringstream Captured;
  std::streambuf *Old = std::cerr.rdbuf(Captured.rdbuf());
  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  const bool Ok = Client.runGrid(Slow, Rows, Stats, Error);
  // The warning is written by the pool worker BEFORE the done frame is
  // enqueued, so once runGrid returns the log line is complete.
  std::cerr.rdbuf(Old);
  ASSERT_TRUE(Ok) << Error;

  const std::string Log = Captured.str();
  EXPECT_NE(Log.find("sweepd: slow request"), std::string::npos) << Log;
  EXPECT_NE(Log.find("(session "), std::string::npos);
  EXPECT_NE(Log.find("decode "), std::string::npos);
  EXPECT_NE(Log.find("simulate "), std::string::npos);
  EXPECT_NE(Log.find("encode "), std::string::npos);
}

TEST(SweepService, SlowRequestLogIsOffByDefault) {
  ServiceFixture F;
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;

  std::ostringstream Captured;
  std::streambuf *Old = std::cerr.rdbuf(Captured.rdbuf());
  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  const bool Ok = Client.runGrid(tinyGrid(), Rows, Stats, Error);
  std::cerr.rdbuf(Old);
  ASSERT_TRUE(Ok) << Error;
  EXPECT_EQ(Captured.str().find("slow request"), std::string::npos)
      << Captured.str();
}

//===----------------------------------------------------------------------===//
// v5: binary requests, frame compression, writer coalescing
//===----------------------------------------------------------------------===//

TEST(SweepService, V4HelloGetsExactV4KeySetAndJsonRequestsServe) {
  // The v5 regression gate for v4 clients: a hello that offers only
  // the v4 capabilities must get a hello_ok without "binary_requests"
  // or "compress" (the exact v4 reply shape), and its JSON requests
  // must serve exactly as before.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  Hello.set("max_batch", JsonValue::uint(4));
  Hello.set("binary_rows", JsonValue::boolean(true));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  ASSERT_EQ(Reply.text("type"), "hello_ok");
  EXPECT_TRUE(Reply.at("binary_rows").asBool());
  EXPECT_EQ(Reply.find("binary_requests"), nullptr)
      << "a v4 hello must get the exact v4 hello_ok key set";
  EXPECT_EQ(Reply.find("compress"), nullptr);

  // A JSON sweep on the same connection serves bit-for-bit: no frame
  // out of this daemon may be CVWZ (compression was never granted).
  SweepGrid Grid = tinyGrid();
  JsonValue Req = JsonValue::object();
  Req.set("type", JsonValue::str("sweep"));
  Req.set("id", JsonValue::uint(1));
  Req.set("grid", gridToJson(Grid));
  ASSERT_TRUE(writeFrame(Conn, Req.dump()));
  std::vector<SweepRow> Rows(Grid.size());
  for (;;) {
    std::string Payload;
    FrameKind Kind = FrameKind::Json;
    ASSERT_EQ(readFrame(Conn, Payload, Kind), FrameStatus::Ok);
    if (Kind == FrameKind::Binary) {
      BinaryRowFrame Frame;
      std::string DecodeError;
      ASSERT_TRUE(decodeBinaryRowFrame(Payload, Frame, DecodeError))
          << DecodeError;
      for (BinaryRowEntry &E : Frame.Entries) {
        ASSERT_LT(E.Row.PointIndex, Rows.size());
        Rows[E.Row.PointIndex] = std::move(E.Row);
      }
      continue;
    }
    JsonValue Message;
    std::string ParseError;
    ASSERT_TRUE(JsonValue::parse(Payload, Message, ParseError)) << ParseError;
    if (Message.text("type") == "done")
      break;
  }
  EXPECT_EQ(csvOfRows(Grid, std::move(Rows)), serialCsv(Grid));
}

TEST(SweepService, BinaryRequestsAreGrantedAndByteIdentical) {
  // The v5 tentpole gate: the client encodes its sweep and
  // run_experiment requests as CVW2 frames by default, and no byte of
  // any result differs from the serial engine.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 4;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(Client.binaryRequestsGranted());
  EXPECT_FALSE(Client.compressGranted()) << "compression is opt-in";

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Points, tinyGrid().size());
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats ExpStats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected, GridRows,
                                   ExpStats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}

TEST(SweepService, ClientCanDeclineBinaryRequests) {
  // --binary-requests off: requests stay JSON and the results are
  // byte-identical anyway — the daemon cannot tell the difference.
  ServiceFixture F;
  SweepClient Client;
  Client.setBinaryRequests(false);
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_FALSE(Client.binaryRequestsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}

TEST(SweepService, BinaryRequestWithoutGrantIsRefusedButServes) {
  // A CVW2 request frame from a session that never negotiated
  // binary_requests is a protocol error — answered, counted, and the
  // connection stays usable for JSON.
  ServiceFixture F;
  Socket Conn = rawConnect(F.HostPort);
  JsonValue Hello = JsonValue::object();
  Hello.set("type", JsonValue::str("hello"));
  JsonValue Reply = rawHello(Conn, std::move(Hello));
  ASSERT_EQ(Reply.text("type"), "hello_ok");

  std::string GridBuf, Payload;
  encodeBinaryGrid(GridBuf, tinyGrid());
  encodeBinarySweepRequest(Payload, /*HasId=*/true, /*Id=*/1, nullptr,
                           GridBuf);
  ASSERT_TRUE(writeFrame(Conn, Payload, FrameKind::Binary));

  std::string ReplyPayload;
  ASSERT_EQ(readFrame(Conn, ReplyPayload), FrameStatus::Ok);
  JsonValue ErrorReply;
  std::string ParseError;
  ASSERT_TRUE(JsonValue::parse(ReplyPayload, ErrorReply, ParseError));
  EXPECT_EQ(ErrorReply.text("type"), "error");
  EXPECT_NE(ErrorReply.text("message").find("binary_requests"),
            std::string::npos)
      << ErrorReply.text("message");
  EXPECT_GT(F.Service.protocolErrors(), 0u);

  // The same grid as JSON on the same connection still serves.
  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}

TEST(SweepService, CompressedSessionIsByteIdenticalAndShrinksWire) {
  // Compression end to end: requests and row streams both ride CVWZ
  // frames, results stay byte-identical, and the daemon's raw-vs-wire
  // byte split shows the shrink.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.MaxBatchRows = 8;
  ServiceFixture F(Config);

  SweepClient Client;
  Client.setCompress(true);
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(Client.compressGranted());
  EXPECT_TRUE(Client.binaryRequestsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // Same contract through the JSON request path with compression on.
  SweepClient JsonClient;
  JsonClient.setCompress(true);
  JsonClient.setBinaryRequests(false);
  JsonClient.setBinaryRows(false);
  ASSERT_TRUE(JsonClient.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(JsonClient.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(JsonClient.compressGranted());
  std::vector<SweepRow> JsonRows;
  ASSERT_TRUE(JsonClient.runGrid(tinyGrid(), JsonRows, Stats, Error))
      << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(JsonRows)),
            serialCsv(tinyGrid()));

  // The writer accounts after the send lands; poll until the shrink is
  // visible. Row batches (8 rows a frame) clear the size threshold, so
  // at least one frame compressed: wire < raw.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (F.Service.bytesSentWire() >= F.Service.bytesSentRaw() &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_LT(F.Service.bytesSentWire(), F.Service.bytesSentRaw())
      << "no frame of a compress-granted session shrank";
  EXPECT_GT(F.Service.bytesSentWire(), 0u);
}

TEST(SweepService, WriterCoalescesFramesUnderPipelinedLoad) {
  // The syscall-coalescing acceptance gate: unbatched rows (one frame
  // per point) with a writer dwell must leave with strictly fewer
  // gather syscalls than frames — the frames_sent : writev_calls ratio
  // exceeds 1.
  SweepServiceConfig Config = ServiceFixture::makeConfig(DefaultMaxFrameBytes);
  Config.WriterCoalesceDelayMicros = 3000;
  ServiceFixture F(Config);

  SweepClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect(F.HostPort, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // 12 row frames plus hello_ok and done crossed the wire; the dwell
  // guarantees the 3 worker threads piled rows into one drain. Poll:
  // the counters land just after the final sendVec returns.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((F.Service.writevCalls() == 0 ||
          F.Service.framesSent() <= F.Service.writevCalls()) &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(F.Service.writevCalls(), 0u);
  EXPECT_GT(F.Service.framesSent(), F.Service.writevCalls())
      << "pipelined frames must coalesce into fewer gather syscalls ("
      << F.Service.framesSent() << " frames in "
      << F.Service.writevCalls() << " calls)";
}

TEST(SweepService, CompressedBinaryThreeShardFleetIsByteIdentical) {
  // The full v5 stack through a fleet: binary requests, binary rows,
  // per-frame compression and coalesced writes on all three shards —
  // and the merged tables still byte-identical to the serial engine.
  FleetFixture F;
  FleetClient Client;
  Client.setCompress(true);
  std::string Error;
  ASSERT_TRUE(Client.connect(F.Addrs, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_TRUE(Client.binaryRowsGranted());
  EXPECT_TRUE(Client.binaryRequestsGranted());
  EXPECT_TRUE(Client.compressGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(Stats.Points, tinyGrid().size());
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));

  // Work still split across the shards (the binary claim carried the
  // shard spec correctly).
  size_t Misses = 0;
  for (ServiceFixture *S : {&F.A, &F.B, &F.C}) {
    EXPECT_LT(S->Cache.misses(), 12u);
    Misses += S->Cache.misses();
  }
  EXPECT_EQ(Misses, 12u) << "fleet-wide, every loop item exactly once";

  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  std::vector<const SweepGrid *> Expected{&Grids[0].Grid, &Grids[1].Grid};
  std::vector<std::vector<SweepRow>> GridRows;
  RemoteSweepStats ExpStats;
  ASSERT_TRUE(Client.runExperiment("hardware_vs_software",
                                   ExperimentOverrides{}, Expected, GridRows,
                                   ExpStats, Error))
      << Error;
  ASSERT_EQ(GridRows.size(), 2u);
  for (size_t G = 0; G != 2; ++G)
    EXPECT_EQ(csvOfRows(Grids[G].Grid, std::move(GridRows[G])),
              serialCsv(Grids[G].Grid));
}

TEST(SweepService, MixedFleetKeepsJsonRequestsWhenOneShardDeclines) {
  // Binary requests engage only when EVERY shard grants them; the
  // FleetClient sends one body shape to all shards, so a mixed grant
  // set must fall back to JSON fleet-wide and stay byte-identical.
  // Simulate a pre-v5 shard by capping one daemon's hello grants off
  // is not possible from config, so pin the client-side AND directly:
  // a fleet where negotiate() reports binary requests granted must
  // have every shard's grant, and a declining client gets JSON.
  FleetFixture F;
  FleetClient Client;
  Client.setBinaryRequests(false);
  std::string Error;
  ASSERT_TRUE(Client.connect(F.Addrs, /*Retries=*/1, Error)) << Error;
  ASSERT_TRUE(Client.negotiate(DefaultClientMaxBatch, 1, Error)) << Error;
  EXPECT_FALSE(Client.binaryRequestsGranted());

  std::vector<SweepRow> Rows;
  RemoteSweepStats Stats;
  ASSERT_TRUE(Client.runGrid(tinyGrid(), Rows, Stats, Error)) << Error;
  EXPECT_EQ(csvOfRows(tinyGrid(), std::move(Rows)), serialCsv(tinyGrid()));
}
