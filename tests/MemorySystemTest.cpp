//===- tests/MemorySystemTest.cpp - interleaved memory system -------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/sim/MemorySystem.h"

#include <gtest/gtest.h>

#include <memory>

using namespace cvliw;

namespace {

MachineConfig fourByteMachine() {
  MachineConfig C = MachineConfig::baseline();
  C.InterleaveBytes = 4;
  return C;
}

} // namespace

TEST(MemorySystem, LocalMissThenHit) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  // Address 0 homes in cluster 0.
  MemAccessResult First = M.access(0, 0, /*IsStore=*/false, 100);
  EXPECT_EQ(First.Type, AccessType::LocalMiss);
  EXPECT_EQ(First.CompleteTime, 100 + 1 + 10)
      << "tag check + next level latency";

  MemAccessResult Second = M.access(0, 0, false, 200);
  EXPECT_EQ(Second.Type, AccessType::LocalHit);
  EXPECT_EQ(Second.CompleteTime, 200 + 1);
}

TEST(MemorySystem, RemoteHitNominalLatency) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  M.access(1, 4, false, 0); // Warm cluster 1's slice (local miss).
  MemAccessResult R = M.access(0, 4, false, 100);
  EXPECT_EQ(R.Type, AccessType::RemoteHit);
  EXPECT_EQ(R.CompleteTime, 100 + 2 + 1 + 2)
      << "request hop, module access, reply hop with idle buses";
}

TEST(MemorySystem, RemoteMissPaysNextLevel) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  MemAccessResult R = M.access(0, 4, false, 100);
  EXPECT_EQ(R.Type, AccessType::RemoteMiss);
  EXPECT_GE(R.CompleteTime, 100u + 2 + 1 + 10 + 2);
}

TEST(MemorySystem, CombinedAccessJoinsPendingFetch) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  MemAccessResult First = M.access(0, 0, false, 100);
  ASSERT_EQ(First.Type, AccessType::LocalMiss);
  // Same block slice requested again before the fetch returns.
  MemAccessResult Second = M.access(0, 0, false, 102);
  EXPECT_EQ(Second.Type, AccessType::Combined);
  EXPECT_GE(Second.CompleteTime, First.CompleteTime)
      << "the combined access cannot finish before the fetch it joined";
  EXPECT_LE(Second.CompleteTime, First.CompleteTime + 2)
      << "the second request is not issued (paper §4.2)";

  const FractionAccumulator &Cls = M.classification();
  EXPECT_EQ(Cls.count(static_cast<size_t>(AccessType::Combined)), 1u);
}

TEST(MemorySystem, BusContentionDelaysBursts) {
  MachineConfig C = fourByteMachine();
  C.MemoryBuses.Count = 1; // Force contention.
  MemorySystem M(C);
  // Warm remote slices.
  M.access(1, 4, false, 0);
  M.access(2, 8, false, 0);
  M.access(3, 12, false, 0);
  // Three simultaneous remote requests from cluster 0 share one bus.
  uint64_t T1 = M.access(0, 4, false, 1000).CompleteTime;
  uint64_t T2 = M.access(0, 8, false, 1000).CompleteTime;
  uint64_t T3 = M.access(0, 12, false, 1000).CompleteTime;
  EXPECT_LT(T1, T2);
  EXPECT_LT(T2, T3) << "single bus serializes the burst";
}

TEST(MemorySystem, SameSourceSameHomeArrivalsStayOrdered) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  // Two stores from cluster 0 to cluster 1 addresses: their commit
  // times must preserve issue order even with multiple buses (the MDC
  // correctness requirement).
  for (unsigned Round = 0; Round != 16; ++Round) {
    uint64_t Base = 10000 * (Round + 1);
    MemAccessResult A =
        M.access(0, 4 + 32 * Round, /*IsStore=*/true, Base);
    MemAccessResult B =
        M.access(0, 20 + 32 * Round, /*IsStore=*/true, Base);
    EXPECT_LT(A.CommitTime, B.CommitTime);
  }
}

TEST(MemorySystem, StoresDoNotUseReplyHop) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  M.access(1, 4, false, 0); // Warm.
  uint64_t Loads = M.busTransactions();
  M.access(0, 4, /*IsStore=*/true, 100);
  EXPECT_EQ(M.busTransactions(), Loads + 1)
      << "a remote store sends a request and no reply";
}

TEST(MemorySystem, AttractionBufferCapturesRemoteSubblock) {
  MachineConfig C = fourByteMachine();
  C.AttractionBuffersEnabled = true;
  MemorySystem M(C);
  M.access(1, 4, false, 0); // Warm home slice.
  MemAccessResult First = M.access(0, 4, false, 100);
  EXPECT_EQ(First.Type, AccessType::RemoteHit);
  // Second access to the same remote subblock: AB hit, counted local.
  MemAccessResult Second = M.access(0, 4, false, 200);
  EXPECT_EQ(Second.Type, AccessType::LocalHit);
  EXPECT_EQ(Second.CompleteTime, 200 + 1);
  EXPECT_EQ(M.attractionBufferHits(), 1u);

  // Whole subblock was attracted: word 20 shares the (block, home 1)
  // subblock with word 4 (paper Figure 8: a[3] attracts a[7]).
  MemAccessResult Third = M.access(0, 20, false, 300);
  EXPECT_EQ(Third.Type, AccessType::LocalHit);
}

TEST(MemorySystem, AttractionBufferStoreMarksDirtyAndFlushes) {
  MachineConfig C = fourByteMachine();
  C.AttractionBuffersEnabled = true;
  MemorySystem M(C);
  M.access(1, 4, false, 0);
  M.access(0, 4, false, 100);            // Attract subblock (remote).
  M.access(0, 4, /*IsStore=*/true, 200); // Dirty the copy locally.
  EXPECT_EQ(M.attractionBufferHits(), 1u);
  EXPECT_EQ(M.flushAttractionBuffers(), 1u)
      << "one dirty subblock written back at loop end (§5.2)";
  EXPECT_EQ(M.flushAttractionBuffers(), 0u);
}

TEST(MemorySystem, UpdateAttractionBufferOnlyNeverAllocates) {
  MachineConfig C = fourByteMachine();
  C.AttractionBuffersEnabled = true;
  MemorySystem M(C);
  M.updateAttractionBufferOnly(0, 4, 100);
  EXPECT_EQ(M.flushAttractionBuffers(), 0u)
      << "a nullified replica must not allocate (paper §5.3: update "
         "where present)";
  // After attracting the subblock, the update dirties it.
  M.access(1, 4, false, 200);
  M.access(0, 4, false, 300);
  M.updateAttractionBufferOnly(0, 4, 400);
  EXPECT_EQ(M.flushAttractionBuffers(), 1u);
}

TEST(MemorySystem, SurvivesTemporaryConfig) {
  // Regression: the config used to be held by reference, so a
  // MemorySystem built from a config that has since been destroyed read
  // dangling memory on every access.
  std::unique_ptr<MemorySystem> M;
  {
    MachineConfig C = fourByteMachine();
    C.InterleaveBytes = 2; // Distinguishable from a default config.
    M = std::make_unique<MemorySystem>(C);
  } // C is gone; M must keep its own copy.
  MemAccessResult R = M->access(0, 0, /*IsStore=*/false, 100);
  EXPECT_EQ(R.Type, AccessType::LocalMiss);
  EXPECT_EQ(R.CompleteTime, 100 + 1 + 10);
  // Address 2 homes in cluster 1 only under the 2-byte interleave the
  // destroyed config carried.
  MemAccessResult Remote = M->access(0, 2, false, 200);
  EXPECT_TRUE(Remote.Type == AccessType::RemoteMiss ||
              Remote.Type == AccessType::RemoteHit);
}

TEST(MemorySystem, ZeroBusConfigIsContentionFree) {
  // Regression: UnitPool::acquire indexed NextFree[0] even when the
  // pool was empty — UB for any config with MemoryBuses.Count == 0.
  MachineConfig C = fourByteMachine();
  C.MemoryBuses.Count = 0;
  MemorySystem M(C);
  M.access(1, 4, false, 0); // Warm cluster 1's slice.
  MemAccessResult R = M.access(0, 4, false, 100);
  EXPECT_EQ(R.Type, AccessType::RemoteHit);
  EXPECT_EQ(R.CompleteTime, 100 + 2 + 1 + 2)
      << "hop latency still applies; only bus contention disappears";

  // A burst from one cluster no longer serializes on bus grants.
  M.access(2, 8, false, 0);
  M.access(3, 12, false, 0);
  uint64_t T1 = M.access(0, 8, false, 1000).CompleteTime;
  uint64_t T2 = M.access(0, 12, false, 1000).CompleteTime;
  EXPECT_EQ(T1, T2) << "contention-free interconnect grants both at once";
}

TEST(MemorySystem, ClassificationAccumulates) {
  MachineConfig C = fourByteMachine();
  MemorySystem M(C);
  M.access(0, 0, false, 0);    // local miss
  M.access(0, 0, false, 100);  // local hit
  M.access(0, 4, false, 200);  // remote miss
  M.access(0, 4, false, 300);  // remote hit
  const FractionAccumulator &Cls = M.classification();
  EXPECT_EQ(Cls.total(), 4u);
  EXPECT_EQ(Cls.count(static_cast<size_t>(AccessType::LocalMiss)), 1u);
  EXPECT_EQ(Cls.count(static_cast<size_t>(AccessType::LocalHit)), 1u);
  EXPECT_EQ(Cls.count(static_cast<size_t>(AccessType::RemoteMiss)), 1u);
  EXPECT_EQ(Cls.count(static_cast<size_t>(AccessType::RemoteHit)), 1u);
}
