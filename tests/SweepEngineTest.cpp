//===- tests/SweepEngineTest.cpp - parallel sweep engine ------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/SweepEngine.h"

#include "cvliw/pipeline/ResultCache.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

using namespace cvliw;

namespace {

/// A small synthetic benchmark that runs in milliseconds.
BenchmarkSpec tinyBenchmark(const std::string &Name, uint64_t SeedBase) {
  BenchmarkSpec B;
  B.Name = Name;
  B.InterleaveBytes = 4;

  LoopSpec L;
  L.Name = Name + ".loop0";
  L.ProfileTrip = 100;
  L.ExecTrip = 200;
  L.Chains = {ChainSpec{1, 1, 2, 1, true}};
  L.ConsistentLoads = 3;
  L.ConsistentStores = 1;
  L.SeedBase = SeedBase;
  B.Loops.push_back(L);
  return B;
}

SweepGrid tinyGrid() {
  SweepGrid Grid;
  Grid.Machines = {MachinePoint{"baseline", MachineConfig::baseline()},
                   MachinePoint{"ab", MachineConfig::withAttractionBuffers()}};
  Grid.Schemes = crossSchemes(
      {CoherencePolicy::Baseline, CoherencePolicy::MDC, CoherencePolicy::DDGT},
      {ClusterHeuristic::PrefClus, ClusterHeuristic::MinComs});
  Grid.Benchmarks = {tinyBenchmark("alpha", 7), tinyBenchmark("beta", 11)};
  return Grid;
}

} // namespace

TEST(SweepEngine, GridExpansionOrderAndSize) {
  SweepGrid Grid = tinyGrid();
  ASSERT_EQ(Grid.size(), 2u * 6u * 2u);

  SweepEngine Engine(Grid, /*Threads=*/1);
  const std::vector<SweepRow> &Rows = Engine.run();
  ASSERT_EQ(Rows.size(), Grid.size());

  // Benchmark-major order: benchmark outermost, then scheme, then
  // machine; PointIndex matches the storage slot.
  for (size_t I = 0; I != Rows.size(); ++I) {
    EXPECT_EQ(Rows[I].PointIndex, I);
    EXPECT_EQ(Rows[I].MachineIndex, I % 2);
    EXPECT_EQ(Rows[I].SchemeIndex, (I / 2) % 6);
    EXPECT_EQ(Rows[I].BenchmarkIndex, I / 12);
    EXPECT_EQ(Rows[I].Machine, Grid.Machines[I % 2].Name);
    EXPECT_EQ(Rows[I].Scheme, Grid.Schemes[(I / 2) % 6].Name);
    EXPECT_EQ(Rows[I].Benchmark, Grid.Benchmarks[I / 12].Name);
    EXPECT_GT(Rows[I].Result.totalCycles(), 0u);
  }
}

TEST(SweepEngine, ParallelRunIsByteIdenticalToSerial) {
  // The determinism contract: a multi-threaded sweep serializes to
  // exactly the bytes of a single-threaded sweep of the same grid.
  // Each engine gets its own cold cache so both actually compute.
  ResultCache SerialCache, ParallelCache;
  SweepEngine Serial(tinyGrid(), /*Threads=*/1);
  SweepEngine Parallel(tinyGrid(), /*Threads=*/4);
  Serial.setCache(&SerialCache);
  Parallel.setCache(&ParallelCache);
  Serial.run();
  Parallel.run();

  std::ostringstream SerialCsv, ParallelCsv;
  Serial.writeCsv(SerialCsv);
  Parallel.writeCsv(ParallelCsv);
  EXPECT_EQ(SerialCsv.str(), ParallelCsv.str());

  std::ostringstream SerialJson, ParallelJson;
  Serial.writeJson(SerialJson);
  Parallel.writeJson(ParallelJson);
  EXPECT_EQ(SerialJson.str(), ParallelJson.str());

  // And the CSV is not trivially empty: header + one line per point.
  std::string Csv = SerialCsv.str();
  size_t Lines = 0;
  for (char C : Csv)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1u + tinyGrid().size());
}

TEST(SweepEngine, RunIsIdempotent) {
  SweepEngine Engine(tinyGrid(), /*Threads=*/2);
  const std::vector<SweepRow> &First = Engine.run();
  uint64_t Total = First[0].Result.totalCycles();
  const std::vector<SweepRow> &Second = Engine.run();
  EXPECT_EQ(&First, &Second);
  EXPECT_EQ(Second[0].Result.totalCycles(), Total);
}

TEST(SweepEngine, FindLooksUpByAxisNames) {
  SweepEngine Engine(tinyGrid(), /*Threads=*/2);
  EXPECT_EQ(Engine.find("alpha", "mdc(prefclus)"), nullptr)
      << "no rows before run()";
  Engine.run();

  const SweepRow *Row = Engine.find("beta", Engine.grid().Schemes[0].Name,
                                    "ab");
  ASSERT_NE(Row, nullptr);
  EXPECT_EQ(Row->Benchmark, "beta");
  EXPECT_EQ(Row->Machine, "ab");
  EXPECT_EQ(Engine.find("gamma", Engine.grid().Schemes[0].Name), nullptr);

  EXPECT_EQ(Engine.at("beta", Engine.grid().Schemes[0].Name, "ab")
                .PointIndex,
            Row->PointIndex);
  EXPECT_THROW(Engine.at("gamma", Engine.grid().Schemes[0].Name),
               std::out_of_range);
}

TEST(SweepEngine, SeedsArePureFunctionOfBaseSeedAndIndex) {
  SweepEngine A(tinyGrid(), /*Threads=*/1);
  SweepEngine B(tinyGrid(), /*Threads=*/3);
  A.run();
  B.run();
  for (size_t I = 0; I != A.run().size(); ++I)
    EXPECT_EQ(A.run()[I].PointSeed, B.run()[I].PointSeed);

  SweepGrid Reseeded = tinyGrid();
  Reseeded.BaseSeed = 1234;
  SweepEngine C(Reseeded, /*Threads=*/1);
  C.run();
  EXPECT_NE(A.run()[0].PointSeed, C.run()[0].PointSeed);
}

TEST(SweepEngine, ReseedLoopsPerturbsDeterministically) {
  SweepGrid Grid = tinyGrid();
  Grid.ReseedLoops = true;
  ResultCache CacheA, CacheB;
  SweepEngine A(Grid, /*Threads=*/1);
  SweepEngine B(Grid, /*Threads=*/4);
  A.setCache(&CacheA);
  B.setCache(&CacheB);
  A.run();
  B.run();
  std::ostringstream CsvA, CsvB;
  A.writeCsv(CsvA);
  B.writeCsv(CsvB);
  EXPECT_EQ(CsvA.str(), CsvB.str())
      << "reseeded sweeps stay thread-count independent";
}

TEST(SweepEngine, HybridSchemeRecordsPerLoopChoices) {
  SweepGrid Grid;
  SchemePoint Hybrid;
  Hybrid.Name = "hybrid(prefclus)";
  Hybrid.Hybrid = true;
  Hybrid.Heuristic = ClusterHeuristic::PrefClus;
  Grid.Schemes = {Hybrid};
  Grid.Benchmarks = {tinyBenchmark("alpha", 7)};

  SweepEngine Engine(Grid, /*Threads=*/1);
  const std::vector<SweepRow> &Rows = Engine.run();
  ASSERT_EQ(Rows.size(), 1u);
  ASSERT_EQ(Rows[0].HybridChoices.size(), Rows[0].Result.Loops.size());
  for (CoherencePolicy Choice : Rows[0].HybridChoices)
    EXPECT_TRUE(Choice == CoherencePolicy::MDC ||
                Choice == CoherencePolicy::DDGT);

  std::ostringstream Csv;
  Engine.writeCsv(Csv);
  EXPECT_NE(Csv.str().find(",hybrid,"), std::string::npos);
}
