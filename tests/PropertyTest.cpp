//===- tests/PropertyTest.cpp - cross-configuration properties ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
// Parameterized sweeps asserting the system's invariants over machine
// shapes the paper does not evaluate (2/4/8 clusters, different
// interleave factors): schedules stay legal, coherence holds, and the
// documented monotonicity properties of the toolchain are preserved.
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/pipeline/Experiment.h"
#include "cvliw/profile/ClusterProfiler.h"
#include "cvliw/sched/DDGTransform.h"
#include "cvliw/sched/MemoryChains.h"
#include "cvliw/sched/ModuloScheduler.h"

#include <gtest/gtest.h>

#include <set>

using namespace cvliw;

namespace {

struct MachineShape {
  unsigned Clusters;
  unsigned Interleave;
};

/// (clusters, interleave, policy) sweep.
using SweepParam = std::tuple<MachineShape, CoherencePolicy>;

class MachineSweep : public ::testing::TestWithParam<SweepParam> {
protected:
  MachineConfig machine() const {
    MachineShape Shape = std::get<0>(GetParam());
    MachineConfig M = MachineConfig::baseline();
    M.NumClusters = Shape.Clusters;
    M.InterleaveBytes = Shape.Interleave;
    // Keep cache geometry consistent: 8KB total across the clusters.
    M.CacheModuleBytes = 8192 / Shape.Clusters;
    return M;
  }

  LoopSpec spec() const {
    LoopSpec Spec;
    Spec.Name = "sweep";
    Spec.Chains = {ChainSpec{1, 1, 2, 1, true}};
    Spec.ConsistentLoads = 4;
    Spec.ConsistentStores = 1;
    Spec.ArithPerLoad = 2;
    Spec.ProfileTrip = 200;
    Spec.ExecTrip = 400;
    Spec.SeedBase = 97;
    return Spec;
  }
};

} // namespace

TEST_P(MachineSweep, ScheduleLegalAndCoherent) {
  MachineConfig M = machine();
  CoherencePolicy Policy = std::get<1>(GetParam());

  Loop L = buildLoop(spec(), M);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  Loop *SchedLoop = &L;
  DDG *SchedGraph = &G;
  DDGTResult T;
  if (Policy == CoherencePolicy::DDGT) {
    T = applyDDGT(L, G, M);
    SchedLoop = &T.TransformedLoop;
    SchedGraph = &T.TransformedDDG;
    EXPECT_TRUE(verifyDDG(*SchedLoop, *SchedGraph));
  }
  ClusterProfile P = profileLoop(*SchedLoop, M);
  MemoryChains Chains(*SchedLoop, *SchedGraph);
  SchedulerOptions Opts;
  Opts.Policy = Policy;
  Opts.Heuristic = ClusterHeuristic::PrefClus;
  ModuloScheduler Scheduler(*SchedLoop, *SchedGraph, M, P, Opts, &Chains);
  auto S = Scheduler.run();
  ASSERT_TRUE(S.has_value()) << M.summary();
  EXPECT_EQ(checkSchedule(*SchedLoop, *SchedGraph, M, *S), "");

  SimOptions SimOpts;
  SimOpts.Policy = Policy;
  SimOpts.CheckCoherence = true;
  SimResult R = simulateKernel(*SchedLoop, *SchedGraph, *S, M, SimOpts);
  EXPECT_EQ(R.Iterations, 400u);
  if (Policy != CoherencePolicy::Baseline) {
    EXPECT_EQ(R.CoherenceViolations, 0u)
        << coherencePolicyName(Policy) << " on " << M.summary();
  }
}

TEST_P(MachineSweep, DdgtReplicaCountTracksClusterCount) {
  MachineConfig M = machine();
  if (std::get<1>(GetParam()) != CoherencePolicy::DDGT)
    GTEST_SKIP();
  Loop L = buildLoop(spec(), M);
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  DDGTResult T = applyDDGT(L, G, M);
  EXPECT_EQ(T.Stats.ReplicaOpsAdded,
            T.Stats.StoresReplicated * (M.NumClusters - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MachineSweep,
    ::testing::Combine(
        ::testing::Values(MachineShape{2, 4}, MachineShape{4, 2},
                          MachineShape{4, 4}, MachineShape{4, 8},
                          MachineShape{8, 4}),
        ::testing::Values(CoherencePolicy::Baseline, CoherencePolicy::MDC,
                          CoherencePolicy::DDGT)),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      const MachineShape &Shape = std::get<0>(Info.param);
      return std::string("c") + std::to_string(Shape.Clusters) + "i" +
             std::to_string(Shape.Interleave) + "_" +
             coherencePolicyName(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Monotonicity and negative-detection properties
//===----------------------------------------------------------------------===//

TEST(Properties, RecMIIMonotoneInLatency) {
  DDG G(3);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::RegFlow, 0});
  G.addEdge({2, 0, DepKind::RegFlow, 1});
  unsigned Prev = 0;
  for (unsigned Lat = 1; Lat <= 8; ++Lat) {
    unsigned RecMII = G.computeRecMII([&](unsigned) { return Lat; });
    EXPECT_GE(RecMII, Prev);
    Prev = RecMII;
  }
}

TEST(Properties, FeasibilityMonotoneInII) {
  DDG G(4);
  G.addEdge({0, 1, DepKind::RegFlow, 0});
  G.addEdge({1, 2, DepKind::MemOutput, 0});
  G.addEdge({2, 3, DepKind::RegFlow, 0});
  G.addEdge({3, 0, DepKind::RegFlow, 1});
  auto Lat = [](unsigned) { return 2u; };
  bool WasFeasible = false;
  for (unsigned II = 1; II <= 16; ++II) {
    bool Feasible = G.feasibleAtII(II, Lat);
    EXPECT_TRUE(!WasFeasible || Feasible)
        << "feasibility must be monotone in II";
    WasFeasible = WasFeasible || Feasible;
  }
  EXPECT_TRUE(WasFeasible);
}

TEST(Properties, CheckScheduleCatchesDependenceViolation) {
  Loop L("bad");
  unsigned Obj = L.addObject({"a", 0, 1024, UniqueAliasGroup});
  unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
  L.addOp(Operation::load(1, S));
  L.addOp(Operation::compute(Opcode::IAdd, 2, {1}));
  DDG G = buildRegisterFlowDDG(L);

  Schedule Sched;
  Sched.II = 2;
  Sched.Length = 2;
  Sched.Ops.resize(2);
  Sched.Ops[0] = {1, 0, 5};
  Sched.Ops[1] = {0, 0, 1}; // Consumer before its producer: illegal.
  EXPECT_NE(checkSchedule(L, G, MachineConfig::baseline(), Sched), "");
}

TEST(Properties, CheckScheduleCatchesFuOverbooking) {
  Loop L("overbook");
  unsigned Obj = L.addObject({"a", 0, 1024, UniqueAliasGroup});
  unsigned S1 = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
  unsigned S2 = L.addStream(AddressExpr::affine(Obj, 256, 16, 4));
  L.addOp(Operation::load(1, S1));
  L.addOp(Operation::load(2, S2));
  DDG G = buildRegisterFlowDDG(L);

  Schedule Sched;
  Sched.II = 2;
  Sched.Length = 3;
  Sched.Ops.resize(2);
  Sched.Ops[0] = {0, 0, 1};
  Sched.Ops[1] = {2, 0, 1}; // Same modulo slot, same memory unit.
  EXPECT_NE(checkSchedule(L, G, MachineConfig::baseline(), Sched), "");
}

TEST(Properties, CheckScheduleCatchesMissingCopy) {
  Loop L("nocopy");
  unsigned Obj = L.addObject({"a", 0, 1024, UniqueAliasGroup});
  unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
  L.addOp(Operation::load(1, S));
  L.addOp(Operation::compute(Opcode::IAdd, 2, {1}));
  DDG G = buildRegisterFlowDDG(L);

  Schedule Sched;
  Sched.II = 2;
  Sched.Length = 8;
  Sched.Ops.resize(2);
  Sched.Ops[0] = {0, 0, 1};
  Sched.Ops[1] = {7, 1, 1}; // Cross-cluster but no CopyOp recorded.
  EXPECT_NE(checkSchedule(L, G, MachineConfig::baseline(), Sched), "");
}

TEST(Properties, StallNeverNegativeAndTotalsConsistent) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    LoopSpec Spec;
    Spec.Name = "totals";
    Spec.Chains = {ChainSpec{1, 1, 1, 1, true}};
    Spec.ConsistentLoads = 3;
    Spec.ConsistentStores = 1;
    Spec.ExecTrip = 300;
    Spec.SeedBase = 1000 + Seed;
    ExperimentConfig Config;
    Config.Policy = CoherencePolicy::MDC;
    LoopRunResult R = runLoop(Spec, Config);
    EXPECT_EQ(R.Sim.TotalCycles, R.Sim.ComputeCycles + R.Sim.StallCycles);
    EXPECT_GE(R.Sim.ComputeCycles, R.Sim.Iterations * R.II);
  }
}

//===----------------------------------------------------------------------===//
// Hybrid solution (§6)
//===----------------------------------------------------------------------===//

TEST(Hybrid, PicksTheBetterEstimate) {
  LoopSpec Spec;
  Spec.Name = "hybrid";
  Spec.Chains = {ChainSpec{1, 1, 6, 2, true}};
  Spec.ConsistentLoads = 2;
  Spec.ArithPerLoad = 2;
  Spec.ProfileTrip = 300;
  Spec.ExecTrip = 600;
  Spec.SeedBase = 71;
  ExperimentConfig Config;
  Config.Heuristic = ClusterHeuristic::PrefClus;
  HybridLoopResult H = runLoopHybrid(Spec, Config);
  if (H.ProfileEstimateMdc <= H.ProfileEstimateDdgt)
    EXPECT_EQ(H.Chosen, CoherencePolicy::MDC);
  else
    EXPECT_EQ(H.Chosen, CoherencePolicy::DDGT);
}

TEST(Hybrid, NeverWorseThanBothWhenProfilePredictsWell) {
  // Affine-dominated loops: profile and execution inputs agree, so the
  // hybrid's execution time must match the better pure technique.
  LoopSpec Spec;
  Spec.Name = "predictable";
  Spec.Chains = {ChainSpec{0, 0, 4, 2, true}};
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.ArithPerLoad = 2;
  Spec.ProfileTrip = 400;
  Spec.ExecTrip = 400;
  Spec.SeedBase = 72;

  ExperimentConfig Config;
  Config.Heuristic = ClusterHeuristic::PrefClus;
  HybridLoopResult H = runLoopHybrid(Spec, Config);

  ExperimentConfig Pure = Config;
  Pure.Policy = CoherencePolicy::MDC;
  uint64_t Mdc = runLoop(Spec, Pure).Sim.TotalCycles;
  Pure.Policy = CoherencePolicy::DDGT;
  uint64_t Ddgt = runLoop(Spec, Pure).Sim.TotalCycles;
  EXPECT_EQ(H.Result.Sim.TotalCycles, std::min(Mdc, Ddgt));
}

TEST(Hybrid, BenchmarkRunReportsChoices) {
  auto Suite = mediabenchSuite();
  const BenchmarkSpec *Bench = findBenchmark(Suite, "gsmenc");
  ExperimentConfig Config;
  Config.Heuristic = ClusterHeuristic::PrefClus;
  std::vector<CoherencePolicy> Choices;
  BenchmarkRunResult R = runBenchmarkHybrid(*Bench, Config, &Choices);
  EXPECT_EQ(Choices.size(), Bench->Loops.size());
  EXPECT_EQ(R.Loops.size(), Bench->Loops.size());
  for (CoherencePolicy P : Choices)
    EXPECT_NE(P, CoherencePolicy::Baseline);
}
