//===- tests/ReplicatedCacheTest.cpp - replicated organization ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
// §2.3 names "a replicated-cache clustered VLIW processor" as another
// distributed-cache configuration the techniques apply to. These tests
// cover the write-update replicated organization and the DDGT
// adaptation (every store instance executes locally, none nullified).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/Experiment.h"
#include "cvliw/sim/MemorySystem.h"

#include <gtest/gtest.h>

using namespace cvliw;

TEST(ReplicatedCache, LoadsAreAlwaysLocal) {
  MachineConfig C = MachineConfig::replicatedCache();
  MemorySystem M(C);
  for (unsigned Cluster = 0; Cluster != 4; ++Cluster) {
    MemAccessResult R =
        M.access(Cluster, 4, /*IsStore=*/false, 100 * (Cluster + 1));
    EXPECT_TRUE(R.Type == AccessType::LocalHit ||
                R.Type == AccessType::LocalMiss ||
                R.Type == AccessType::Combined)
        << "no remote accesses exist with a replicated cache";
  }
}

TEST(ReplicatedCache, StoreBroadcastsToPresentCopies) {
  MachineConfig C = MachineConfig::replicatedCache();
  MemorySystem M(C);
  // Clusters 0 and 2 cache the block.
  M.access(0, 0, false, 0);
  M.access(2, 0, false, 0);
  uint64_t BusBefore = M.busTransactions();
  MemAccessResult R = M.access(0, 0, /*IsStore=*/true, 100);
  EXPECT_EQ(R.BroadcastCommits.size(), 4u)
      << "one visibility time per cluster";
  EXPECT_EQ(M.busTransactions(), BusBefore + 3)
      << "updates travel to the three other clusters";
  // The local copy is visible before the remote ones.
  uint64_t LocalTime = 0, MaxRemote = 0;
  for (const auto &[Cluster, Time] : R.BroadcastCommits) {
    if (Cluster == 0)
      LocalTime = Time;
    else
      MaxRemote = std::max(MaxRemote, Time);
  }
  EXPECT_LT(LocalTime, MaxRemote);
}

TEST(ReplicatedCache, LocalOnlyStoreSkipsBroadcast) {
  MachineConfig C = MachineConfig::replicatedCache();
  MemorySystem M(C);
  M.access(1, 0, false, 0);
  uint64_t BusBefore = M.busTransactions();
  MemAccessResult R =
      M.access(1, 0, /*IsStore=*/true, 100, /*LocalOnly=*/true);
  EXPECT_EQ(M.busTransactions(), BusBefore)
      << "a DDGT instance touches only its own copy";
  EXPECT_EQ(R.BroadcastCommits.size(), 1u);
  EXPECT_EQ(R.BroadcastCommits[0].first, 1u);
}

TEST(ReplicatedCache, PipelinePoliciesStayCoherent) {
  LoopSpec Spec;
  Spec.Name = "replicated";
  Spec.Chains = {ChainSpec{2, 1, 2, 1, true}};
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.ExecTrip = 400;
  Spec.SeedBase = 311;

  for (CoherencePolicy Policy :
       {CoherencePolicy::MDC, CoherencePolicy::DDGT}) {
    ExperimentConfig Config;
    Config.Policy = Policy;
    Config.Heuristic = ClusterHeuristic::MinComs;
    Config.Machine = MachineConfig::replicatedCache();
    Config.CheckCoherence = true;
    LoopRunResult R = runLoop(Spec, Config);
    EXPECT_EQ(R.Sim.CoherenceViolations, 0u)
        << coherencePolicyName(Policy);
    EXPECT_GT(R.Sim.MemoryAccesses, 0u);
  }
}

TEST(ReplicatedCache, DdgtInstancesAllExecute) {
  LoopSpec Spec;
  Spec.Name = "allrun";
  Spec.Chains = {ChainSpec{1, 1, 1, 1, true}};
  Spec.ConsistentLoads = 2;
  Spec.ExecTrip = 300;
  Spec.SeedBase = 312;

  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::DDGT;
  Config.Machine = MachineConfig::replicatedCache();
  LoopRunResult R = runLoop(Spec, Config);
  EXPECT_EQ(R.Sim.NullifiedReplicaSlots, 0u)
      << "with a replicated cache every instance updates its own copy";

  Config.Machine = MachineConfig::baseline();
  LoopRunResult Interleaved = runLoop(Spec, Config);
  EXPECT_GT(Interleaved.Sim.NullifiedReplicaSlots, 0u);
}

TEST(ReplicatedCache, LoadsAllLocalInWholePipeline) {
  LoopSpec Spec;
  Spec.Name = "locality";
  Spec.ConsistentLoads = 6;
  Spec.ConsistentStores = 2;
  Spec.ExecTrip = 300;
  Spec.SeedBase = 313;

  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::Baseline;
  Config.Machine = MachineConfig::replicatedCache();
  LoopRunResult R = runLoop(Spec, Config);
  EXPECT_DOUBLE_EQ(R.Sim.fraction(AccessType::RemoteHit), 0.0);
  EXPECT_DOUBLE_EQ(R.Sim.fraction(AccessType::RemoteMiss), 0.0);
}

TEST(ReplicatedCache, OrganizationNames) {
  EXPECT_STREQ(cacheOrganizationName(CacheOrganization::WordInterleaved),
               "word-interleaved");
  EXPECT_STREQ(cacheOrganizationName(CacheOrganization::Replicated),
               "replicated");
  EXPECT_EQ(MachineConfig::replicatedCache().Organization,
            CacheOrganization::Replicated);
}
