//===- tests/TraceTest.cpp - Chrome-trace sink tests ----------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/support/Trace.h"

#include "cvliw/net/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace cvliw;

namespace {

/// Reads and parses a written trace file; fails the test on bad JSON.
JsonValue readTrace(const std::string &Path) {
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "cannot read " << Path;
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  JsonValue Trace;
  std::string Error;
  EXPECT_TRUE(JsonValue::parse(Buffer.str(), Trace, Error)) << Error;
  return Trace;
}

} // namespace

TEST(TraceSink, DisabledByDefaultAndDropsSpans) {
  TraceSink Sink;
  EXPECT_FALSE(Sink.enabled());
  // Recording into a dark sink is a no-op, not a crash.
  Sink.complete("span", "cat", 1, 2);
}

TEST(TraceSink, StartRejectsUnwritablePath) {
  TraceSink Sink;
  std::string Error;
  EXPECT_FALSE(Sink.start("/no/such/dir/trace.json", Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(Sink.enabled());
}

TEST(TraceSink, DoubleStartFails) {
  TraceSink Sink;
  const std::string Path = ::testing::TempDir() + "cvliw_trace_double.json";
  std::string Error;
  ASSERT_TRUE(Sink.start(Path, Error)) << Error;
  EXPECT_FALSE(Sink.start(Path, Error));
  EXPECT_TRUE(Sink.stop(Error)) << Error;
}

TEST(TraceSink, WritesValidChromeTrace) {
  TraceSink Sink;
  const std::string Path = ::testing::TempDir() + "cvliw_trace_basic.json";
  std::string Error;
  ASSERT_TRUE(Sink.start(Path, Error)) << Error;
  EXPECT_TRUE(Sink.enabled());

  // Record from two named threads so the file carries two tracks.
  std::thread Worker([&Sink] {
    Sink.setThreadName("worker-a");
    Sink.complete("simulate", "simulation", 10, 30);
    Sink.complete("cache_lookup", "cache", 30, 31);
  });
  Worker.join();
  Sink.setThreadName("main");
  Sink.complete("request_decode", "codec", 5, 9);
  // End < Start clamps to zero duration rather than underflowing.
  Sink.complete("send", "socket", 100, 90);

  ASSERT_TRUE(Sink.stop(Error)) << Error;
  EXPECT_FALSE(Sink.enabled());
  EXPECT_EQ(Sink.eventsWritten(), 4u);
  EXPECT_EQ(Sink.eventsDropped(), 0u);

  JsonValue Trace = readTrace(Path);
  size_t NameEvents = 0, SpanEvents = 0;
  std::vector<std::string> ThreadNames;
  for (const JsonValue &Ev : Trace.items()) {
    const std::string &Ph = Ev.text("ph");
    // Only complete ("X") and metadata ("M") events are emitted: B/E
    // balance holds trivially on every track.
    ASSERT_TRUE(Ph == "X" || Ph == "M") << "unexpected phase " << Ph;
    EXPECT_EQ(Ev.u64("pid"), 1u);
    if (Ph == "M") {
      EXPECT_EQ(Ev.text("name"), "thread_name");
      ThreadNames.push_back(Ev.at("args").text("name"));
      ++NameEvents;
      continue;
    }
    ++SpanEvents;
    // ts/dur parse as unsigned: non-negative by construction.
    (void)Ev.u64("ts");
    (void)Ev.u64("dur");
    EXPECT_FALSE(Ev.text("name").empty());
    EXPECT_FALSE(Ev.text("cat").empty());
    if (Ev.text("name") == "send") {
      EXPECT_EQ(Ev.u64("dur"), 0u); // the clamped span
    }
    if (Ev.text("name") == "simulate") {
      EXPECT_EQ(Ev.u64("ts"), 10u);
      EXPECT_EQ(Ev.u64("dur"), 20u);
    }
  }
  EXPECT_EQ(SpanEvents, 4u);
  EXPECT_EQ(NameEvents, 2u);
  EXPECT_NE(std::find(ThreadNames.begin(), ThreadNames.end(), "worker-a"),
            ThreadNames.end());
  EXPECT_NE(std::find(ThreadNames.begin(), ThreadNames.end(), "main"),
            ThreadNames.end());
}

TEST(TraceSink, RingWrapsKeepingNewestSpans) {
  TraceSink Sink;
  const std::string Path = ::testing::TempDir() + "cvliw_trace_wrap.json";
  std::string Error;
  ASSERT_TRUE(Sink.start(Path, Error, /*Capacity=*/4)) << Error;
  for (uint64_t I = 0; I != 10; ++I)
    Sink.complete("span", "cat", I * 10, I * 10 + 1);
  ASSERT_TRUE(Sink.stop(Error)) << Error;
  EXPECT_EQ(Sink.eventsWritten(), 4u);
  EXPECT_EQ(Sink.eventsDropped(), 6u);

  // The survivors are the newest four, written oldest-first.
  JsonValue Trace = readTrace(Path);
  std::vector<uint64_t> Timestamps;
  for (const JsonValue &Ev : Trace.items())
    if (Ev.text("ph") == "X")
      Timestamps.push_back(Ev.u64("ts"));
  EXPECT_EQ(Timestamps, (std::vector<uint64_t>{60, 70, 80, 90}));
}

TEST(TraceSink, ConcurrentRecording) {
  // Exercised under -fsanitize=thread in CI (the Trace filter).
  TraceSink Sink;
  const std::string Path = ::testing::TempDir() + "cvliw_trace_mt.json";
  std::string Error;
  ASSERT_TRUE(Sink.start(Path, Error)) << Error;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&Sink, T] {
      Sink.setThreadName("t" + std::to_string(T));
      for (uint64_t I = 0; I != 500; ++I)
        Sink.complete("span", "cat", I, I + 1);
    });
  for (std::thread &T : Threads)
    T.join();
  ASSERT_TRUE(Sink.stop(Error)) << Error;
  EXPECT_EQ(Sink.eventsWritten(), 2000u);
  JsonValue Trace = readTrace(Path);
  size_t Spans = 0;
  for (const JsonValue &Ev : Trace.items())
    if (Ev.text("ph") == "X")
      ++Spans;
  EXPECT_EQ(Spans, 2000u);
}

TEST(TraceSink, StopWithoutStartIsOk) {
  TraceSink Sink;
  std::string Error;
  EXPECT_TRUE(Sink.stop(Error)) << Error;
}

TEST(TraceScope, WritesAndLogsOnExit) {
  const std::string Path = ::testing::TempDir() + "cvliw_trace_scope.json";
  std::ostringstream Log;
  {
    TraceScope Scope(Path, &Log);
    ASSERT_TRUE(TraceSink::process().enabled());
    {
      // A nested scope must not stop the enclosing trace early.
      TraceScope Inner(Path, &Log);
      EXPECT_TRUE(TraceSink::process().enabled());
    }
    EXPECT_TRUE(TraceSink::process().enabled());
    TraceSink::process().complete("simulate", "simulation", 1, 2);
  }
  EXPECT_FALSE(TraceSink::process().enabled());
  EXPECT_NE(Log.str().find("sweep: wrote trace "), std::string::npos);
  JsonValue Trace = readTrace(Path);
  EXPECT_GE(Trace.items().size(), 1u);
}

TEST(TraceScope, EmptyPathIsInert) {
  std::ostringstream Log;
  {
    TraceScope Scope("", &Log);
    EXPECT_FALSE(TraceSink::process().enabled());
  }
  EXPECT_TRUE(Log.str().empty());
}
