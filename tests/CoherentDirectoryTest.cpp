//===- tests/CoherentDirectoryTest.cpp - multiVLIW-style hardware ---------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/Experiment.h"
#include "cvliw/sim/MemorySystem.h"

#include <gtest/gtest.h>

using namespace cvliw;

TEST(CoherentDirectory, BlocksMigrateOnDemand) {
  MachineConfig C = MachineConfig::coherentDirectory();
  MemorySystem M(C);
  MemAccessResult First = M.access(0, 0, /*IsStore=*/false, 100);
  EXPECT_EQ(First.Type, AccessType::LocalMiss);
  // Cluster 1 asks for the same block: cache-to-cache transfer.
  MemAccessResult Second = M.access(1, 0, false, 200);
  EXPECT_EQ(Second.Type, AccessType::RemoteHit);
  EXPECT_EQ(M.migrations(), 1u);
  // Now both hold it.
  EXPECT_EQ(M.access(0, 0, false, 300).Type, AccessType::LocalHit);
  EXPECT_EQ(M.access(1, 0, false, 300).Type, AccessType::LocalHit);
}

TEST(CoherentDirectory, StoresInvalidateSharers) {
  MachineConfig C = MachineConfig::coherentDirectory();
  MemorySystem M(C);
  M.access(0, 0, false, 100);
  M.access(1, 0, false, 200);
  M.access(2, 0, false, 300);
  // Cluster 0 writes: clusters 1 and 2 lose their copies.
  MemAccessResult W = M.access(0, 0, /*IsStore=*/true, 400);
  EXPECT_EQ(M.invalidations(), 2u);
  EXPECT_GT(W.CommitTime, 400u + 1)
      << "the write waits for invalidation delivery";
  // Cluster 1 must re-fetch (migration from cluster 0).
  EXPECT_EQ(M.access(1, 0, false, 500).Type, AccessType::RemoteHit);
}

TEST(CoherentDirectory, ExclusiveWriterHitsLocally) {
  MachineConfig C = MachineConfig::coherentDirectory();
  MemorySystem M(C);
  M.access(3, 0, /*IsStore=*/true, 100); // Miss + exclusive.
  MemAccessResult W = M.access(3, 0, /*IsStore=*/true, 200);
  EXPECT_EQ(W.Type, AccessType::LocalHit);
  EXPECT_EQ(M.invalidations(), 0u);
  EXPECT_EQ(W.CommitTime, 200u + 1);
}

TEST(CoherentDirectory, FreeSchedulingBecomesCoherent) {
  // The whole point of the hardware: the optimistic baseline stops
  // violating memory coherence.
  LoopSpec Spec;
  Spec.Name = "hw";
  Spec.Chains = {ChainSpec{3, 2, 0, 0, true}};
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.ExecTrip = 2000;
  Spec.SeedBase = 611;

  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::Baseline;
  Config.Heuristic = ClusterHeuristic::MinComs;
  Config.CheckCoherence = true;

  Config.Machine = MachineConfig::coherentDirectory();
  LoopRunResult Hw = runLoop(Spec, Config);
  EXPECT_EQ(Hw.Sim.CoherenceViolations, 0u)
      << "directory hardware serializes aliased accesses";
}

TEST(CoherentDirectory, MigratoryWriteSharingCostsCycles) {
  // Aliased accesses spread across clusters ping-pong the block:
  // hardware coherence is not free (the paper's motivation for
  // software-only techniques).
  LoopSpec Spec;
  Spec.Name = "pingpong";
  Spec.Chains = {ChainSpec{2, 2, 0, 0, true}};
  Spec.ConsistentLoads = 2;
  Spec.ExecTrip = 1500;
  Spec.SeedBase = 612;

  ExperimentConfig Config;
  Config.Policy = CoherencePolicy::Baseline;
  Config.Heuristic = ClusterHeuristic::MinComs;
  Config.Machine = MachineConfig::coherentDirectory();
  LoopRunResult Hw = runLoop(Spec, Config);

  uint64_t Invalidations = 0;
  Invalidations += Hw.Sim.BusTransactions;
  EXPECT_GT(Invalidations, Hw.Sim.Iterations)
      << "write sharing generates continuous coherence traffic";
}
