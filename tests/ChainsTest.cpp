//===- tests/ChainsTest.cpp - MDC memory dependent chains -----------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/alias/MemoryDisambiguator.h"
#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/sched/MemoryChains.h"
#include "cvliw/workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace cvliw;

namespace {

/// The Figure 3 loop: loads n1, n2; stores n3, n4; add n5, all four
/// memory ops mutually ambiguous.
Loop figure3Loop() {
  Loop L("fig3");
  unsigned Group = 1;
  unsigned A = L.addObject({"A", 0x1000, 1024, Group});
  unsigned B = L.addObject({"B", 0x3000, 1024, Group});
  unsigned C = L.addObject({"C", 0x5000, 1024, Group});
  unsigned D = L.addObject({"D", 0x7000, 1024, Group});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::affine(A, 0, 16, 4))));
  L.addOp(Operation::load(2, L.addStream(AddressExpr::affine(B, 4, 16, 4))));
  L.addOp(Operation::store(1, L.addStream(AddressExpr::affine(C, 8, 16, 4))));
  L.addOp(
      Operation::store(2, L.addStream(AddressExpr::affine(D, 12, 16, 4))));
  L.addOp(Operation::compute(Opcode::IAdd, 3, {1, 2}));
  return L;
}

DDG withMemEdges(const Loop &L) {
  DDG G = buildRegisterFlowDDG(L);
  MemoryDisambiguator D(L);
  D.addMemoryEdges(G);
  return G;
}

} // namespace

TEST(MemoryChains, Figure3FormsOneChain) {
  Loop L = figure3Loop();
  DDG G = withMemEdges(L);
  MemoryChains Chains(L, G);
  EXPECT_EQ(Chains.numChains(), 1u);
  EXPECT_EQ(Chains.biggestChainSize(), 4u)
      << "the paper: {n1, n2, n3, n4} form a memory dependent chain";
  EXPECT_EQ(Chains.chainOf(0), Chains.chainOf(3));
  EXPECT_EQ(Chains.chainOf(4), NoChain) << "the add is not a memory op";
}

TEST(MemoryChains, Figure3Ratios) {
  Loop L = figure3Loop();
  DDG G = withMemEdges(L);
  MemoryChains Chains(L, G);
  EXPECT_DOUBLE_EQ(Chains.cmr(), 1.0) << "4 of 4 memory ops";
  EXPECT_DOUBLE_EQ(Chains.car(), 0.8) << "4 of 5 ops";
}

TEST(MemoryChains, IndependentStreamsFormNoChains) {
  Loop L("free");
  for (unsigned I = 0; I != 4; ++I) {
    unsigned Obj = L.addObject(
        {"o" + std::to_string(I), I * 0x10000, 1024, UniqueAliasGroup});
    unsigned S = L.addStream(AddressExpr::affine(Obj, 0, 16, 4));
    if (I % 2)
      L.addOp(Operation::store(NoReg, S));
    else
      L.addOp(Operation::load(I + 1, S));
  }
  DDG G = withMemEdges(L);
  MemoryChains Chains(L, G);
  EXPECT_EQ(Chains.numChains(), 0u);
  EXPECT_EQ(Chains.biggestChainSize(), 0u);
  EXPECT_DOUBLE_EQ(Chains.cmr(), 0.0);
  for (unsigned I = 0; I != 4; ++I)
    EXPECT_EQ(Chains.chainOf(I), NoChain);
}

TEST(MemoryChains, SelfDependenceAloneIsNoChain) {
  Loop L("self");
  unsigned Obj = L.addObject({"o", 0, 256, UniqueAliasGroup});
  unsigned S = L.addStream(AddressExpr::gather(Obj, 4, 1));
  unsigned StoreId = L.addOp(Operation::store(NoReg, S));
  DDG G = withMemEdges(L);
  MemoryChains Chains(L, G);
  EXPECT_EQ(Chains.chainOf(StoreId), NoChain)
      << "a store that only aliases itself serializes in its own cluster";
}

TEST(MemoryChains, TwoDisjointChains) {
  Loop L("two");
  for (unsigned C = 0; C != 2; ++C) {
    unsigned Obj = L.addObject(
        {"shared" + std::to_string(C), C * 0x100000, 256,
         UniqueAliasGroup});
    L.addOp(Operation::load(
        C * 2 + 1, L.addStream(AddressExpr::gather(Obj, 4, C))));
    L.addOp(Operation::store(
        C * 2 + 1, L.addStream(AddressExpr::gather(Obj, 4, 10 + C))));
  }
  DDG G = withMemEdges(L);
  MemoryChains Chains(L, G);
  EXPECT_EQ(Chains.numChains(), 2u);
  EXPECT_EQ(Chains.biggestChainSize(), 2u);
  EXPECT_NE(Chains.chainOf(0), Chains.chainOf(2));
  EXPECT_EQ(Chains.chainOf(0), Chains.chainOf(1));
}

TEST(MemoryChains, KernelBuilderChainSizesMatchSpec) {
  MachineConfig Machine = MachineConfig::baseline();
  for (unsigned Loads : {2u, 6u}) {
    for (unsigned Stores : {1u, 3u}) {
      LoopSpec Spec;
      Spec.Name = "sized";
      Spec.Chains = {ChainSpec{0, 0, Loads, Stores, true}};
      Spec.ConsistentLoads = 3;
      Spec.SeedBase = Loads * 10 + Stores;
      Loop L = buildLoop(Spec, Machine);
      DDG G = withMemEdges(L);
      MemoryChains Chains(L, G);
      EXPECT_EQ(Chains.biggestChainSize(), Loads + Stores)
          << Loads << " loads + " << Stores << " stores";
    }
  }
}
