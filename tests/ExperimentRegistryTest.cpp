//===- tests/ExperimentRegistryTest.cpp - named experiments ---------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/ExperimentRegistry.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace cvliw;

namespace {

/// A one-point spec for harness-behavior tests (cheap: no chains, two
/// plain loads).
ExperimentSpec tinySpec(const std::string &Name, bool RenderOk = true) {
  ExperimentSpec Spec;
  Spec.Name = Name;
  Spec.PaperSection = "test";
  Spec.Description = "a test experiment";
  Spec.Banner = "=== " + Name + " banner ===\n";
  Spec.BuildGrids = [] {
    SweepGrid Grid;
    SchemePoint S;
    S.Name = "free";
    Grid.Schemes = {S};
    BenchmarkSpec B;
    B.Name = "tiny";
    LoopSpec L;
    L.Name = "tiny.loop0";
    L.ProfileTrip = 10;
    L.ExecTrip = 20;
    L.ConsistentLoads = 2;
    L.SeedBase = 5;
    B.Loops.push_back(L);
    Grid.Benchmarks = {B};
    return std::vector<ExperimentGrid>{{"tiny", "", std::move(Grid)}};
  };
  Spec.Render = [RenderOk](const ExperimentRunContext &Ctx) {
    Ctx.Out << "rendered " << Ctx.engine().grid().size()
            << " points, seed " << Ctx.engine().run()[0].PointSeed << "\n";
    return RenderOk;
  };
  return Spec;
}

/// The "seed N" tail of the tiny renderer's output.
std::string seedLine(const std::string &Text) {
  size_t Pos = Text.find("seed ");
  return Pos == std::string::npos ? std::string() : Text.substr(Pos);
}

} // namespace

// The tentpole contract: all sixteen paper experiments registered,
// uniquely named, each with at least one non-empty grid.
TEST(ExperimentRegistry, SixteenExperimentsUniqueNamesNonEmptyGrids) {
  const ExperimentRegistry &Registry = ExperimentRegistry::global();
  EXPECT_EQ(Registry.size(), 16u);

  std::set<std::string> Names;
  for (const ExperimentSpec &Spec : Registry.experiments()) {
    EXPECT_TRUE(Names.insert(Spec.Name).second)
        << "duplicate experiment name " << Spec.Name;
    EXPECT_FALSE(Spec.PaperSection.empty()) << Spec.Name;
    EXPECT_FALSE(Spec.Description.empty()) << Spec.Name;
    EXPECT_FALSE(Spec.Banner.empty()) << Spec.Name;

    std::vector<ExperimentGrid> Grids = Spec.BuildGrids();
    ASSERT_FALSE(Grids.empty()) << Spec.Name;
    size_t PrimaryGrids = 0;
    std::set<std::string> Suffixes;
    for (const ExperimentGrid &Grid : Grids) {
      EXPECT_GT(Grid.Grid.size(), 0u)
          << Spec.Name << " grid '" << Grid.Label << "' is empty";
      EXPECT_TRUE(Suffixes.insert(Grid.FileSuffix).second)
          << Spec.Name << " reuses file suffix '" << Grid.FileSuffix << "'";
      if (Grid.FileSuffix.empty())
        ++PrimaryGrids;
    }
    EXPECT_EQ(PrimaryGrids, 1u)
        << Spec.Name << " needs exactly one unsuffixed primary grid";
  }
}

TEST(ExperimentRegistry, PaperExperimentsRegisteredByName) {
  const ExperimentRegistry &Registry = ExperimentRegistry::global();
  for (const char *Name :
       {"table1", "table2", "table3", "table4", "table5", "fig6", "fig7",
        "fig9", "nobal", "cache_organizations", "hardware_vs_software",
        "hybrid", "stall_attribution", "specialization_impact",
        "ablation_ordering", "ablation_latency"})
    EXPECT_NE(Registry.find(Name), nullptr) << Name;
  EXPECT_EQ(Registry.find("no_such_experiment"), nullptr);
  EXPECT_EQ(Registry.find(""), nullptr);
}

TEST(ExperimentRegistry, HardwareVsSoftwareCarriesSuffixedSecondaryGrid) {
  const ExperimentSpec *Spec =
      ExperimentRegistry::global().find("hardware_vs_software");
  ASSERT_NE(Spec, nullptr);
  std::vector<ExperimentGrid> Grids = Spec->BuildGrids();
  ASSERT_EQ(Grids.size(), 2u);
  EXPECT_EQ(Grids[0].FileSuffix, ".hw");
  EXPECT_EQ(Grids[1].FileSuffix, "");
  // The hardware reference machine differs from the software baseline.
  EXPECT_EQ(Grids[0].Grid.Machines[0].Name, "mvliw");
}

TEST(ExperimentRegistry, AddRejectsDuplicatesAndIncompleteSpecs) {
  ExperimentRegistry Registry;
  Registry.add(tinySpec("one"));
  EXPECT_THROW(Registry.add(tinySpec("one")), std::invalid_argument);

  ExperimentSpec Nameless = tinySpec("");
  EXPECT_THROW(Registry.add(std::move(Nameless)), std::invalid_argument);

  ExperimentSpec NoBuilder = tinySpec("two");
  NoBuilder.BuildGrids = nullptr;
  EXPECT_THROW(Registry.add(std::move(NoBuilder)), std::invalid_argument);

  ExperimentSpec NoRender = tinySpec("three");
  NoRender.Render = nullptr;
  EXPECT_THROW(Registry.add(std::move(NoRender)), std::invalid_argument);

  EXPECT_EQ(Registry.size(), 1u);
}

TEST(ExperimentRegistry, ApplyOverridesTouchesOnlyOverriddenKnobs) {
  SweepGrid Grid;
  Grid.BaseSeed = 1234;
  Grid.ReseedLoops = false;

  applyOverrides(Grid, ExperimentOverrides{});
  EXPECT_EQ(Grid.BaseSeed, 1234u);
  EXPECT_FALSE(Grid.ReseedLoops);

  ExperimentOverrides Overrides;
  Overrides.HasBaseSeed = true;
  Overrides.BaseSeed = 999;
  applyOverrides(Grid, Overrides);
  EXPECT_EQ(Grid.BaseSeed, 999u);
  EXPECT_FALSE(Grid.ReseedLoops);

  Overrides = ExperimentOverrides{};
  Overrides.HasReseedLoops = true;
  Overrides.ReseedLoops = true;
  applyOverrides(Grid, Overrides);
  EXPECT_EQ(Grid.BaseSeed, 999u);
  EXPECT_TRUE(Grid.ReseedLoops);
}

// The shared harness: banner first, sweeps, blank line, rendered table;
// a renderer returning false becomes exit code 1.
TEST(ExperimentRegistry, RunExperimentPrintsBannerSweepsAndRenders) {
  ExperimentSpec Spec = tinySpec("harness");
  SweepRunOptions Options;
  Options.Threads = 1;
  std::ostringstream Out;
  EXPECT_EQ(runExperiment(Spec, Options, Out), 0);
  const std::string Text = Out.str();
  EXPECT_NE(Text.find("=== harness banner ===\n"), std::string::npos);
  EXPECT_NE(Text.find("sweep: 1 points"), std::string::npos);
  EXPECT_NE(Text.find("rendered 1 points"), std::string::npos);
  // Banner before sweep log before render.
  EXPECT_LT(Text.find("=== harness banner ==="), Text.find("sweep: "));
  EXPECT_LT(Text.find("sweep: "), Text.find("rendered"));
}

TEST(ExperimentRegistry, RunExperimentFailedRenderIsExitOne) {
  ExperimentSpec Spec = tinySpec("failing", /*RenderOk=*/false);
  SweepRunOptions Options;
  Options.Threads = 1;
  std::ostringstream Out;
  EXPECT_EQ(runExperiment(Spec, Options, Out), 1);
}

TEST(ExperimentRegistry, BaseSeedOptionOverridesTheGridSeed) {
  ExperimentSpec Spec = tinySpec("seeded");
  SweepRunOptions Options;
  Options.Threads = 1;
  Options.HasBaseSeed = true;
  Options.BaseSeed = 42;

  std::ostringstream WithOverride, Default, SameOverride;
  EXPECT_EQ(runExperiment(Spec, Options, WithOverride), 0);
  SweepRunOptions Plain;
  Plain.Threads = 1;
  EXPECT_EQ(runExperiment(Spec, Plain, Default), 0);
  EXPECT_EQ(runExperiment(Spec, Options, SameOverride), 0);

  // The per-point seed derives from the grid's base seed, so the
  // override must change it — deterministically.
  EXPECT_FALSE(seedLine(WithOverride.str()).empty());
  EXPECT_NE(seedLine(WithOverride.str()), seedLine(Default.str()));
  EXPECT_EQ(seedLine(WithOverride.str()), seedLine(SameOverride.str()));
}

TEST(ExperimentRegistry, RunExperimentMainRejectsUnknownName) {
  char Prog[] = "test";
  char *Argv[] = {Prog};
  EXPECT_EQ(runExperimentMain("definitely_not_registered", 1, Argv), 1);
}
