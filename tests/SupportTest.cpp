//===- tests/SupportTest.cpp - support library tests ----------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/support/Rng.h"
#include "cvliw/support/Statistics.h"
#include "cvliw/support/TableWriter.h"
#include "cvliw/support/UnionFind.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace cvliw;

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 16; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all values of a small range appear";
}

TEST(Rng, ForkIndependent) {
  Rng A(5);
  Rng B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(UnionFind, Basics) {
  UnionFind U(8);
  EXPECT_FALSE(U.connected(0, 1));
  U.merge(0, 1);
  EXPECT_TRUE(U.connected(0, 1));
  U.merge(1, 2);
  EXPECT_TRUE(U.connected(0, 2));
  EXPECT_FALSE(U.connected(0, 3));
  EXPECT_EQ(U.sizeOfSet(0), 3u);
  EXPECT_EQ(U.sizeOfSet(3), 1u);
}

TEST(UnionFind, MergeIsIdempotent) {
  UnionFind U(4);
  size_t Root1 = U.merge(0, 1);
  size_t Root2 = U.merge(0, 1);
  EXPECT_EQ(Root1, Root2);
  EXPECT_EQ(U.sizeOfSet(0), 2u);
}

TEST(Statistics, SafeRatio) {
  EXPECT_DOUBLE_EQ(safeRatio(4, 2), 2.0);
  EXPECT_DOUBLE_EQ(safeRatio(4, 0, -1.0), -1.0);
}

TEST(Statistics, Amean) {
  EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(amean({}), 0.0);
}

TEST(Statistics, FractionAccumulator) {
  FractionAccumulator Acc(3);
  Acc.add(0, 6);
  Acc.add(1, 3);
  Acc.add(2, 1);
  EXPECT_EQ(Acc.total(), 10u);
  EXPECT_DOUBLE_EQ(Acc.fraction(0), 0.6);
  EXPECT_DOUBLE_EQ(Acc.fraction(1), 0.3);

  FractionAccumulator Other(3);
  Other.add(0, 10);
  Acc.merge(Other);
  EXPECT_EQ(Acc.total(), 20u);
  EXPECT_DOUBLE_EQ(Acc.fraction(0), 0.8);
}

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "2"});
  std::ostringstream OS;
  T.render(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer | 2     |"), std::string::npos);
}

TEST(TableWriter, Formatting) {
  EXPECT_EQ(TableWriter::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(TableWriter::pct(0.625, 1), "62.5%");
  EXPECT_EQ(TableWriter::grouped(1280451), "1,280,451");
  EXPECT_EQ(TableWriter::grouped(12), "12");
}
