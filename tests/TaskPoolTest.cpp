//===- tests/TaskPoolTest.cpp - tagged fair worker pool tests -------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//
//
// The fairness contract, machine-checked: with one worker the drain
// order is fully deterministic, so these tests block the worker behind
// a gate job, stage every tagged submission, release the gate and
// assert the exact interleaving.
//
//===----------------------------------------------------------------------===//

#include "cvliw/support/TaskPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

using namespace cvliw;

namespace {

/// Blocks the single worker until the test has staged its submissions.
struct Gate {
  std::mutex M;
  std::condition_variable Cv;
  bool Open = false;

  void open() {
    // Notify under the lock: a waiter that wakes and destroys this
    // Gate must not race the notify itself.
    std::lock_guard<std::mutex> Lock(M);
    Open = true;
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [this] { return Open; });
  }
};

/// Counts executed jobs and records the tag order they ran in.
struct Trace {
  std::mutex M;
  std::condition_variable Cv;
  std::vector<uint64_t> Order;

  void record(uint64_t Tag) {
    // Notify under the lock (see Gate::open): waitFor's caller may
    // destroy the Trace as soon as it returns.
    std::lock_guard<std::mutex> Lock(M);
    Order.push_back(Tag);
    Cv.notify_all();
  }
  std::vector<uint64_t> waitFor(size_t N) {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Order.size() >= N; });
    return Order;
  }
};

} // namespace

TEST(TaskPool, RoundRobinInterleavesTags) {
  TaskPool Pool(1);
  Gate G;
  Trace T;
  Pool.submit([&] { G.wait(); });
  // Staged while the worker is parked: one client's whole grid ahead
  // of the other's in arrival order...
  for (int I = 0; I != 4; ++I)
    Pool.submit(1, [&] { T.record(1); });
  for (int I = 0; I != 4; ++I)
    Pool.submit(2, [&] { T.record(2); });
  G.open();
  // ...but the drain alternates tags: FIFO within a client, fair
  // across clients.
  std::vector<uint64_t> Expected{1, 2, 1, 2, 1, 2, 1, 2};
  EXPECT_EQ(T.waitFor(8), Expected);
}

TEST(TaskPool, LateTagJoinsTheRotationImmediately) {
  TaskPool Pool(1);
  Gate G;
  Trace T;
  Pool.submit([&] { G.wait(); });
  for (int I = 0; I != 3; ++I)
    Pool.submit(1, [&] { T.record(1); });
  for (int I = 0; I != 3; ++I)
    Pool.submit(2, [&] { T.record(2); });
  // Tag 3 arrives last with one job; round-robin still serves it after
  // at most one turn of the earlier tags, not after their backlog.
  Pool.submit(3, [&] { T.record(3); });
  G.open();
  std::vector<uint64_t> Expected{1, 2, 3, 1, 2, 1, 2};
  EXPECT_EQ(T.waitFor(7), Expected);
}

TEST(TaskPool, WeightedTagTakesConsecutiveTurns) {
  TaskPool Pool(1);
  Gate G;
  Trace T;
  Pool.setTagWeight(1, 2);
  Pool.submit([&] { G.wait(); });
  for (int I = 0; I != 4; ++I)
    Pool.submit(1, [&] { T.record(1); });
  for (int I = 0; I != 4; ++I)
    Pool.submit(2, [&] { T.record(2); });
  G.open();
  // Weight 2: tag 1 takes two jobs per turn, tag 2 one — then tag 2
  // drains its remainder once tag 1 is exhausted.
  std::vector<uint64_t> Expected{1, 1, 2, 1, 1, 2, 2, 2};
  EXPECT_EQ(T.waitFor(8), Expected);
}

TEST(TaskPool, FifoWithinATag) {
  TaskPool Pool(1);
  Gate G;
  Trace T;
  Pool.submit([&] { G.wait(); });
  for (uint64_t I = 0; I != 6; ++I)
    Pool.submit(5, [&T, I] { T.record(100 + I); });
  G.open();
  std::vector<uint64_t> Expected{100, 101, 102, 103, 104, 105};
  EXPECT_EQ(T.waitFor(6), Expected);
}

TEST(TaskPool, PendingAndRunningCountersPerTag) {
  TaskPool Pool(1);
  Gate G;
  Trace T;
  // The gate job itself is tagged, so it shows up as running.
  Pool.submit(7, [&] {
    T.record(7);
    G.wait();
  });
  T.waitFor(1); // The gate job is now executing.
  for (int I = 0; I != 3; ++I)
    Pool.submit(7, [] {});
  for (int I = 0; I != 2; ++I)
    Pool.submit(9, [] {});

  EXPECT_EQ(Pool.runningCount(7), 1u);
  EXPECT_EQ(Pool.pendingCount(7), 3u);
  EXPECT_EQ(Pool.pendingCount(9), 2u);
  EXPECT_EQ(Pool.pendingTotal(), 5u);
  EXPECT_EQ(Pool.runningCount(9), 0u);

  G.open();
  // Drain: counters return to zero (poll; the last job's completion is
  // not itself observable through the trace).
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((Pool.pendingTotal() != 0 || Pool.runningCount(7) != 0 ||
          Pool.runningCount(9) != 0) &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_EQ(Pool.pendingTotal(), 0u);
  EXPECT_EQ(Pool.pendingCount(7), 0u);
  EXPECT_EQ(Pool.runningCount(7), 0u);
}

TEST(TaskPool, ManyWorkersCompleteEverything) {
  TaskPool Pool(4);
  Trace T;
  for (uint64_t Tag = 1; Tag <= 3; ++Tag)
    for (int I = 0; I != 20; ++I)
      Pool.submit(Tag, [&T, Tag] { T.record(Tag); });
  std::vector<uint64_t> Order = T.waitFor(60);
  EXPECT_EQ(Order.size(), 60u);
  for (uint64_t Tag = 1; Tag <= 3; ++Tag)
    EXPECT_EQ(static_cast<size_t>(
                  std::count(Order.begin(), Order.end(), Tag)),
              20u);
}
