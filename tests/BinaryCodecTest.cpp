//===- tests/BinaryCodecTest.cpp - CVW2 binary row codec tests ------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
// The protocol-v4 binary row encoding: varint plumbing, the
// streaming-header/whole-frame equivalence the sweep service's writer
// relies on, a randomized round-trip property test that pushes frames
// through a byte-at-a-time FrameDecoder and requires the decoded rows
// to match the JSON codec's result exactly, and the decoder's
// rejection of truncated, trailing and out-of-range payloads.
//
//===----------------------------------------------------------------------===//

#include "cvliw/net/BinaryCodec.h"
#include "cvliw/net/Frame.h"
#include "cvliw/net/WireFormat.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

using namespace cvliw;

namespace {

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t Values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             UINT64_C(0xFFFFFFFF),
                             UINT64_C(0x100000000),
                             UINT64_C(0xFFFFFFFFFFFFFFFF)};
  for (uint64_t V : Values) {
    std::string Buf;
    appendVarint(Buf, V);
    const char *P = Buf.data();
    uint64_t Out = 0;
    ASSERT_TRUE(readVarint(P, Buf.data() + Buf.size(), Out));
    EXPECT_EQ(Out, V);
    EXPECT_EQ(P, Buf.data() + Buf.size());
  }
}

TEST(VarintTest, TruncatedReadFails) {
  std::string Buf;
  appendVarint(Buf, UINT64_C(0xFFFFFFFFFFFFFFFF));
  for (size_t Len = 0; Len != Buf.size(); ++Len) {
    const char *P = Buf.data();
    uint64_t Out = 0;
    EXPECT_FALSE(readVarint(P, Buf.data() + Len, Out));
  }
}

/// A row with every field set to a distinctive value, so a codec that
/// drops or reorders a field cannot round-trip it.
SweepRow distinctiveRow() {
  SweepRow Row;
  Row.PointIndex = 5;
  Row.MachineIndex = 1;
  Row.SchemeIndex = 2;
  Row.BenchmarkIndex = 3;
  Row.Machine = "unified-16w";
  Row.Scheme = "mdc/prefclus";
  Row.Benchmark = "epicdec";
  Row.PointSeed = UINT64_C(0x0123456789abcdef);
  Row.HybridChoices = {CoherencePolicy::Baseline, CoherencePolicy::MDC,
                       CoherencePolicy::DDGT};
  Row.Result.Benchmark = Row.Benchmark;
  for (unsigned I = 0; I != 3; ++I) {
    LoopRunResult L;
    L.LoopName = "epicdec.loop" + std::to_string(I);
    L.Weight = 0.125 * (I + 1);
    L.ExecTrip = 1000 + I;
    L.Scheduled = I != 1;
    L.II = 7 + I;
    L.ResMII = 5;
    L.RecMII = 7;
    L.NumOps = 40 + I;
    L.NumMemOps = 12;
    L.CopiesPerIter = 3;
    L.BiggestChain = 9;
    L.Sim.Iterations = 1000;
    L.Sim.TotalCycles = 9000 + I;
    L.Sim.ComputeCycles = 7000;
    L.Sim.StallCycles = 2000 + I;
    L.Sim.DynamicOps = 40000;
    L.Sim.MemoryAccesses = 12000;
    L.Sim.AttractionBufferHits = 800;
    L.Sim.BusTransactions = 300;
    L.Sim.CoherenceViolations = I;
    L.Sim.NullifiedReplicaSlots = 2 * I;
    for (size_t B = 0; B != 5; ++B) {
      L.Sim.AccessClassification.add(B, 100 * B + I);
      L.Sim.StallAttribution.add(B, 10 * B + I);
    }
    Row.Result.Loops.push_back(L);
  }
  return Row;
}

/// The field-exact comparison: both codecs feed the same JSON
/// serializer, so dump equality is equality of every field the wire
/// carries.
void expectRowsEqual(const SweepRow &A, const SweepRow &B) {
  EXPECT_EQ(rowToJson(A).dump(), rowToJson(B).dump());
}

TEST(BinaryCodecTest, SingleRowRoundTripsEveryField) {
  BinaryRowFrame Frame;
  Frame.IsBatch = false;
  Frame.HasId = true;
  Frame.Id = 42;
  Frame.Entries.emplace_back();
  Frame.Entries.back().Row = distinctiveRow();

  std::string Payload;
  encodeBinaryRowFrame(Frame, Payload);

  BinaryRowFrame Decoded;
  std::string Error;
  ASSERT_TRUE(decodeBinaryRowFrame(Payload, Decoded, Error)) << Error;
  EXPECT_FALSE(Decoded.IsBatch);
  ASSERT_TRUE(Decoded.HasId);
  EXPECT_EQ(Decoded.Id, 42u);
  ASSERT_EQ(Decoded.Entries.size(), 1u);
  EXPECT_FALSE(Decoded.Entries[0].HasGrid);
  EXPECT_FALSE(Decoded.Entries[0].HasLoops);
  expectRowsEqual(Decoded.Entries[0].Row, Frame.Entries[0].Row);
}

TEST(BinaryCodecTest, StreamingHeaderMatchesWholeFrameEncoder) {
  // The daemon's writer appends entries into a recycled buffer and
  // prepends the header at flush time; that must produce the same
  // bytes as encoding the whole frame in one go.
  BinaryRowFrame Frame;
  Frame.IsBatch = true;
  Frame.HasId = true;
  Frame.Id = 7;
  for (int I = 0; I != 2; ++I) {
    BinaryRowEntry E;
    E.HasGrid = true;
    E.Grid = static_cast<uint64_t>(I);
    E.HasLoops = true;
    E.Loops = {0, 2};
    E.Row = distinctiveRow();
    Frame.Entries.push_back(std::move(E));
  }

  std::string Whole;
  encodeBinaryRowFrame(Frame, Whole);

  std::string Streamed;
  encodeBinaryFrameHeader(Streamed, /*IsBatch=*/true, /*HasId=*/true,
                          /*Id=*/7, /*Count=*/2);
  for (const BinaryRowEntry &E : Frame.Entries)
    encodeBinaryRowEntry(Streamed, E.HasGrid, E.Grid,
                         E.HasLoops ? &E.Loops : nullptr, E.Row);
  EXPECT_EQ(Streamed, Whole);
}

std::string randomName(std::mt19937_64 &Rng) {
  static const char Alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789._-";
  std::uniform_int_distribution<size_t> Len(0, 24);
  std::uniform_int_distribution<size_t> Pick(0, sizeof(Alphabet) - 2);
  std::string Out;
  size_t N = Len(Rng);
  Out.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Out.push_back(Alphabet[Pick(Rng)]);
  return Out;
}

SweepRow randomRow(std::mt19937_64 &Rng) {
  std::uniform_int_distribution<uint64_t> U64;
  std::uniform_int_distribution<size_t> Small(0, 200);
  std::uniform_int_distribution<int> Coin(0, 1);
  SweepRow Row;
  Row.PointIndex = Small(Rng);
  Row.MachineIndex = Small(Rng);
  Row.SchemeIndex = Small(Rng);
  Row.BenchmarkIndex = Small(Rng);
  Row.Machine = randomName(Rng);
  Row.Scheme = randomName(Rng);
  Row.Benchmark = randomName(Rng);
  Row.PointSeed = U64(Rng);
  size_t Hybrids = Small(Rng) % 5;
  for (size_t I = 0; I != Hybrids; ++I)
    Row.HybridChoices.push_back(
        static_cast<CoherencePolicy>(U64(Rng) % 3));
  Row.Result.Benchmark = Row.Benchmark;
  size_t Loops = Small(Rng) % 4;
  for (size_t I = 0; I != Loops; ++I) {
    LoopRunResult L;
    L.LoopName = randomName(Rng);
    // A finite double with plenty of mantissa bits in play; the wire
    // carries its exact bit pattern either way.
    L.Weight = static_cast<double>(Small(Rng)) / 64.0;
    L.ExecTrip = U64(Rng);
    L.Scheduled = Coin(Rng) != 0;
    L.II = static_cast<unsigned>(Small(Rng));
    L.ResMII = static_cast<unsigned>(Small(Rng));
    L.RecMII = static_cast<unsigned>(Small(Rng));
    L.NumOps = Small(Rng);
    L.NumMemOps = Small(Rng);
    L.CopiesPerIter = Small(Rng);
    L.BiggestChain = Small(Rng);
    L.Sim.Iterations = U64(Rng);
    L.Sim.TotalCycles = U64(Rng);
    L.Sim.ComputeCycles = U64(Rng);
    L.Sim.StallCycles = U64(Rng);
    L.Sim.DynamicOps = U64(Rng);
    L.Sim.MemoryAccesses = U64(Rng);
    L.Sim.AttractionBufferHits = U64(Rng);
    L.Sim.BusTransactions = U64(Rng);
    L.Sim.CoherenceViolations = U64(Rng);
    L.Sim.NullifiedReplicaSlots = U64(Rng);
    for (size_t B = 0; B != 5; ++B) {
      L.Sim.AccessClassification.add(B, Small(Rng));
      L.Sim.StallAttribution.add(B, Small(Rng));
    }
    Row.Result.Loops.push_back(std::move(L));
  }
  return Row;
}

/// The JSON-path result for one row: what a JSON client would hold
/// after the daemon serialized it and the client parsed it back.
SweepRow throughJsonCodec(const SweepRow &Row) {
  JsonValue Parsed;
  std::string Error;
  EXPECT_TRUE(JsonValue::parse(rowToJson(Row).dump(), Parsed, Error))
      << Error;
  return rowFromJson(Parsed);
}

TEST(BinaryCodecTest, RandomFramesRoundTripThroughByteFedDecoder) {
  std::mt19937_64 Rng(0xb17c0dec);
  std::uniform_int_distribution<uint64_t> U64;
  std::uniform_int_distribution<size_t> Small(0, 200);
  std::uniform_int_distribution<int> Coin(0, 1);

  for (int Trial = 0; Trial != 50; ++Trial) {
    BinaryRowFrame Frame;
    Frame.IsBatch = Coin(Rng) != 0;
    Frame.HasId = Coin(Rng) != 0;
    Frame.Id = Frame.HasId ? U64(Rng) : 0;
    size_t Entries = Frame.IsBatch ? Small(Rng) % 5 : 1;
    for (size_t E = 0; E != Entries; ++E) {
      BinaryRowEntry Entry;
      Entry.HasGrid = Coin(Rng) != 0;
      Entry.Grid = Entry.HasGrid ? Small(Rng) : 0;
      Entry.Row = randomRow(Rng);
      // A sparse loop mask over the row's loops, like a shard's
      // partial row (multi-grid experiments exercise HasGrid above).
      if (Coin(Rng) != 0 && !Entry.Row.Result.Loops.empty()) {
        Entry.HasLoops = true;
        for (size_t L = 0; L != Entry.Row.Result.Loops.size(); ++L)
          if (Coin(Rng) != 0)
            Entry.Loops.push_back(L);
      }
      Frame.Entries.push_back(std::move(Entry));
    }

    std::string Payload;
    encodeBinaryRowFrame(Frame, Payload);

    // Wrap in a CVW2 frame and feed the decoder one byte at a time:
    // the incremental parser must hand back the identical payload and
    // report the binary kind.
    std::string Wire;
    Wire.append(FrameMagic2, 4);
    uint32_t Len = static_cast<uint32_t>(Payload.size());
    char Header[4] = {static_cast<char>(Len >> 24),
                      static_cast<char>(Len >> 16),
                      static_cast<char>(Len >> 8),
                      static_cast<char>(Len)};
    Wire.append(Header, 4);
    Wire += Payload;

    FrameDecoder Decoder;
    std::string Out;
    FrameKind Kind = FrameKind::Json;
    for (size_t I = 0; I != Wire.size(); ++I) {
      ASSERT_FALSE(Decoder.next(Out, Kind));
      ASSERT_TRUE(Decoder.feed(Wire.data() + I, 1));
    }
    ASSERT_TRUE(Decoder.next(Out, Kind));
    EXPECT_EQ(Kind, FrameKind::Binary);
    ASSERT_EQ(Out, Payload);

    BinaryRowFrame Decoded;
    std::string Error;
    ASSERT_TRUE(decodeBinaryRowFrame(Out, Decoded, Error)) << Error;
    EXPECT_EQ(Decoded.IsBatch, Frame.IsBatch);
    EXPECT_EQ(Decoded.HasId, Frame.HasId);
    EXPECT_EQ(Decoded.Id, Frame.Id);
    ASSERT_EQ(Decoded.Entries.size(), Frame.Entries.size());
    for (size_t E = 0; E != Frame.Entries.size(); ++E) {
      EXPECT_EQ(Decoded.Entries[E].HasGrid, Frame.Entries[E].HasGrid);
      EXPECT_EQ(Decoded.Entries[E].Grid, Frame.Entries[E].Grid);
      EXPECT_EQ(Decoded.Entries[E].HasLoops, Frame.Entries[E].HasLoops);
      EXPECT_EQ(Decoded.Entries[E].Loops, Frame.Entries[E].Loops);
      // The tentpole's contract: the binary decode is byte-identical
      // to what the JSON path would have produced for the same row.
      expectRowsEqual(Decoded.Entries[E].Row,
                      throughJsonCodec(Frame.Entries[E].Row));
    }
  }
}

TEST(BinaryCodecTest, EveryTruncationFailsAndConsumesNothingTrailing) {
  BinaryRowFrame Frame;
  Frame.IsBatch = true;
  Frame.HasId = true;
  Frame.Id = 99;
  BinaryRowEntry Entry;
  Entry.HasGrid = true;
  Entry.Grid = 1;
  Entry.HasLoops = true;
  Entry.Loops = {0, 1};
  Entry.Row = distinctiveRow();
  Frame.Entries.push_back(std::move(Entry));

  std::string Payload;
  encodeBinaryRowFrame(Frame, Payload);

  // The encoding is self-delimiting: every strict prefix must be
  // rejected (never misparse into a shorter valid frame)...
  for (size_t Len = 0; Len != Payload.size(); ++Len) {
    BinaryRowFrame Out;
    std::string Error;
    EXPECT_FALSE(
        decodeBinaryRowFrame(Payload.substr(0, Len), Out, Error))
        << "prefix of " << Len << " bytes decoded";
  }
  // ...and so must trailing garbage after a complete frame.
  BinaryRowFrame Out;
  std::string Error;
  EXPECT_FALSE(decodeBinaryRowFrame(Payload + '\0', Out, Error));
  EXPECT_TRUE(decodeBinaryRowFrame(Payload, Out, Error)) << Error;
}

TEST(BinaryCodecTest, RejectsBadTypeFlagsAndEnumValues) {
  BinaryRowFrame Frame;
  Frame.Entries.emplace_back();
  Frame.Entries.back().Row = distinctiveRow();
  std::string Payload;
  encodeBinaryRowFrame(Frame, Payload);

  BinaryRowFrame Out;
  std::string Error;

  std::string BadType = Payload;
  BadType[0] = 3; // neither row nor row_batch
  EXPECT_FALSE(decodeBinaryRowFrame(BadType, Out, Error));

  std::string BadFlags = Payload;
  BadFlags[1] = static_cast<char>(0x80); // undefined frame-flag bit
  EXPECT_FALSE(decodeBinaryRowFrame(BadFlags, Out, Error));

  std::string BadEntryFlags = Payload;
  BadEntryFlags[2] = static_cast<char>(0x04); // undefined entry-flag bit
  EXPECT_FALSE(decodeBinaryRowFrame(BadEntryFlags, Out, Error));

  // A hybrid-choice byte outside the CoherencePolicy enum: rebuild the
  // frame with a corrupted choice byte by encoding a row whose single
  // hybrid choice we then overwrite (it is the byte right after the
  // hybrid count, which follows the fixed-width 8-byte seed).
  SweepRow Row;
  Row.Machine = "m";
  Row.HybridChoices = {CoherencePolicy::Baseline};
  BinaryRowFrame HFrame;
  HFrame.Entries.emplace_back();
  HFrame.Entries.back().Row = Row;
  std::string HPayload;
  encodeBinaryRowFrame(HFrame, HPayload);
  std::string Good = HPayload;
  ASSERT_TRUE(decodeBinaryRowFrame(Good, Out, Error)) << Error;
  // The choice byte is the last byte before the trailing loop count 0.
  HPayload[HPayload.size() - 2] = 3;
  EXPECT_FALSE(decodeBinaryRowFrame(HPayload, Out, Error));
  EXPECT_NE(Error.find("hybrid"), std::string::npos) << Error;
}

TEST(BinaryCodecTest, EmptyPayloadAndEmptyBatchBehave) {
  BinaryRowFrame Out;
  std::string Error;
  EXPECT_FALSE(decodeBinaryRowFrame(std::string(), Out, Error));

  // An empty batch is legal (a final flush can race a cancel) and
  // round-trips.
  BinaryRowFrame Empty;
  Empty.IsBatch = true;
  std::string Payload;
  encodeBinaryRowFrame(Empty, Payload);
  ASSERT_TRUE(decodeBinaryRowFrame(Payload, Out, Error)) << Error;
  EXPECT_TRUE(Out.IsBatch);
  EXPECT_FALSE(Out.HasId);
  EXPECT_TRUE(Out.Entries.empty());
}

//===----------------------------------------------------------------------===//
// v5 request frames: structural grids, sweep / run_experiment
//===----------------------------------------------------------------------===//

/// A grid exercising every field the wire carries: two machines (one
/// heavily diverged from baseline, so the delta mask has many bits),
/// schemes with every toggle, a benchmark with chains, FP ops and
/// full-width seeds.
SweepGrid fullGrid() {
  SweepGrid Grid;
  Grid.BaseSeed = 0xdeadbeefcafef00dULL;
  Grid.ReseedLoops = true;

  MachinePoint M;
  M.Name = "nobal-mem";
  M.Config = MachineConfig::nobalMem();
  M.Config.AttractionBuffersEnabled = true;
  Grid.Machines = {MachinePoint{}, M};

  SchemePoint S;
  S.Name = "DDGT(PrefClus)+spec";
  S.Policy = CoherencePolicy::DDGT;
  S.Heuristic = ClusterHeuristic::PrefClus;
  S.ApplySpecialization = true;
  S.Ordering = SchedulerOrdering::Swing;
  S.AssignLatencies = false;
  S.TolerateUnschedulable = true;
  SchemePoint H;
  H.Name = "hybrid";
  H.Hybrid = true;
  Grid.Schemes = {S, H};

  BenchmarkSpec B;
  B.Name = "wiretest";
  B.InterleaveBytes = 2;
  B.MainElemBytes = 2;
  B.MainElemPct = 87.5;
  B.ProfileInput = "clinton.pcm";
  B.ExecInput = "s_16_44.pcm";
  B.InEvaluation = false;
  LoopSpec L;
  L.Name = "wiretest.loop0";
  L.Weight = 0.375;
  L.SeedBase = 0x8000000000000001ULL; // Exercises the full 64-bit width.
  L.Chains = {ChainSpec{1, 2, 3, 4, false}, ChainSpec{0, 0, 2, 1, true}};
  L.FpOps = 3;
  B.Loops = {L};
  Grid.Benchmarks = {B};
  return Grid;
}

/// The grid-level equivalent of expectRowsEqual: both decode paths
/// feed gridToJson, so dump equality is field-exhaustive equality.
void expectGridsEqual(const SweepGrid &A, const SweepGrid &B) {
  EXPECT_EQ(gridToJson(A).dump(), gridToJson(B).dump());
}

TEST(BinaryRequestCodec, SweepRequestRoundTripsEveryGridField) {
  const SweepGrid Grid = fullGrid();
  std::string GridBuf;
  encodeBinaryGrid(GridBuf, Grid);

  ShardMap Map({"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"});
  ShardSpec Claim{1, Map};
  std::string Payload;
  encodeBinarySweepRequest(Payload, /*HasId=*/true, /*Id=*/42, &Claim,
                           GridBuf);

  BinaryRequestFrame Frame;
  std::string Error;
  ASSERT_TRUE(decodeBinaryRequestFrame(Payload, Frame, Error)) << Error;
  EXPECT_EQ(Frame.Type, BinaryFrameSweep);
  ASSERT_TRUE(Frame.HasId);
  EXPECT_EQ(Frame.Id, 42u);
  ASSERT_TRUE(Frame.HasShard);
  EXPECT_EQ(Frame.Shard.Index, 1u);
  EXPECT_EQ(Frame.Shard.Map.shards(), Map.shards());
  EXPECT_EQ(Frame.Shard.Map.virtualNodes(), Map.virtualNodes());
  expectGridsEqual(Frame.Grid, Grid);

  // Claimless and id-less: the flag bits really gate their fields.
  std::string Bare;
  encodeBinarySweepRequest(Bare, /*HasId=*/false, /*Id=*/0, nullptr,
                           GridBuf);
  BinaryRequestFrame BareFrame;
  ASSERT_TRUE(decodeBinaryRequestFrame(Bare, BareFrame, Error)) << Error;
  EXPECT_FALSE(BareFrame.HasId);
  EXPECT_FALSE(BareFrame.HasShard);
  expectGridsEqual(BareFrame.Grid, Grid);
  EXPECT_LT(Bare.size(), Payload.size()) << "omitted claim costs no bytes";
}

TEST(BinaryRequestCodec, DecodeIsByteIdenticalToJsonPath) {
  // The tentpole contract: a daemon cannot tell which encoding a grid
  // arrived in. The binary decode must equal what gridFromJson yields
  // from the same grid's JSON — for randomized grids, not just the
  // hand-built one.
  std::mt19937_64 Rng(0x9e1dc0de);
  std::uniform_int_distribution<uint64_t> U64;
  std::uniform_int_distribution<size_t> Small(0, 6);
  std::uniform_int_distribution<unsigned> Field(1, 64);
  std::uniform_int_distribution<int> Coin(0, 1);

  for (int Trial = 0; Trial != 30; ++Trial) {
    SweepGrid Grid;
    Grid.BaseSeed = U64(Rng);
    Grid.ReseedLoops = Coin(Rng) != 0;
    Grid.Machines.clear();
    size_t Machines = 1 + Small(Rng);
    for (size_t M = 0; M != Machines; ++M) {
      MachinePoint P;
      P.Name = randomName(Rng);
      // Random walks over a few config fields: realistic near-identical
      // machine axes, so the delta encoding's sparse and dense paths
      // both run.
      P.Config.NumClusters = Field(Rng);
      if (Coin(Rng) != 0)
        P.Config.CacheModuleBytes = 1u << (Field(Rng) % 20);
      if (Coin(Rng) != 0)
        P.Config.AttractionBuffersEnabled = true;
      if (Coin(Rng) != 0)
        P.Config.MemoryBuses.Latency = Field(Rng);
      Grid.Machines.push_back(std::move(P));
    }
    size_t Schemes = 1 + Small(Rng);
    for (size_t S = 0; S != Schemes; ++S) {
      SchemePoint P;
      P.Name = randomName(Rng);
      P.Policy = static_cast<CoherencePolicy>(U64(Rng) % 3);
      P.Heuristic = static_cast<ClusterHeuristic>(U64(Rng) % 2);
      P.Hybrid = Coin(Rng) != 0;
      P.ApplySpecialization = Coin(Rng) != 0;
      P.CheckCoherence = Coin(Rng) != 0;
      P.Ordering = static_cast<SchedulerOrdering>(U64(Rng) % 2);
      P.AssignLatencies = Coin(Rng) != 0;
      P.TolerateUnschedulable = Coin(Rng) != 0;
      Grid.Schemes.push_back(std::move(P));
    }
    size_t Benches = 1 + Small(Rng);
    for (size_t B = 0; B != Benches; ++B) {
      BenchmarkSpec Spec;
      Spec.Name = randomName(Rng);
      Spec.InterleaveBytes = 1 + Field(Rng) % 8;
      Spec.MainElemBytes = 1 + Field(Rng) % 8;
      Spec.MainElemPct = static_cast<double>(Small(Rng)) * 12.5;
      Spec.ProfileInput = randomName(Rng);
      Spec.ExecInput = randomName(Rng);
      Spec.InEvaluation = Coin(Rng) != 0;
      size_t Loops = Small(Rng) % 3;
      for (size_t L = 0; L != Loops; ++L) {
        LoopSpec Loop;
        Loop.Name = randomName(Rng);
        Loop.Weight = static_cast<double>(Small(Rng)) / 8.0;
        Loop.ProfileTrip = Field(Rng);
        Loop.ExecTrip = Field(Rng);
        Loop.ConsistentLoads = Field(Rng) % 8;
        Loop.RotatingLoads = Field(Rng) % 8;
        Loop.GatherLoads = Field(Rng) % 8;
        Loop.ConsistentStores = Field(Rng) % 8;
        Loop.ArithPerLoad = Field(Rng) % 8;
        Loop.FpOps = Field(Rng) % 8;
        Loop.FpDivs = Field(Rng) % 8;
        Loop.ScalarRecurrence = Coin(Rng) != 0;
        Loop.SeedBase = U64(Rng);
        size_t Chains = Small(Rng) % 3;
        for (size_t C = 0; C != Chains; ++C)
          Loop.Chains.push_back(ChainSpec{Field(Rng) % 4, Field(Rng) % 4,
                                          Field(Rng) % 4, Field(Rng) % 4,
                                          Coin(Rng) != 0});
        Spec.Loops.push_back(std::move(Loop));
      }
      Grid.Benchmarks.push_back(std::move(Spec));
    }

    // The JSON path's result for this grid.
    JsonValue Parsed;
    std::string ParseError;
    ASSERT_TRUE(
        JsonValue::parse(gridToJson(Grid).dump(), Parsed, ParseError))
        << ParseError;
    const SweepGrid ViaJson = gridFromJson(Parsed);

    // The binary path's result.
    std::string GridBuf, Payload, Error;
    encodeBinaryGrid(GridBuf, Grid);
    encodeBinarySweepRequest(Payload, /*HasId=*/true, Trial, nullptr,
                             GridBuf);
    BinaryRequestFrame Frame;
    ASSERT_TRUE(decodeBinaryRequestFrame(Payload, Frame, Error)) << Error;
    expectGridsEqual(Frame.Grid, ViaJson);
  }
}

TEST(BinaryRequestCodec, RunExperimentRequestRoundTrips) {
  ShardMap Map({"h1:1", "h2:2"});
  ShardSpec Claim{0, Map};
  const struct {
    bool HasBaseSeed;
    bool HasReseedLoops;
    bool ReseedLoops;
  } Cases[] = {{false, false, false},
               {true, false, false},
               {false, true, true},
               {true, true, false}};
  for (const auto &C : Cases) {
    ExperimentOverrides Overrides;
    Overrides.HasBaseSeed = C.HasBaseSeed;
    Overrides.BaseSeed = 0xfeedfacefeedfaceULL;
    Overrides.HasReseedLoops = C.HasReseedLoops;
    Overrides.ReseedLoops = C.ReseedLoops;

    std::string Payload;
    encodeBinaryRunExperimentRequest(Payload, /*HasId=*/true, /*Id=*/7,
                                     &Claim, "hardware_vs_software",
                                     Overrides);
    BinaryRequestFrame Frame;
    std::string Error;
    ASSERT_TRUE(decodeBinaryRequestFrame(Payload, Frame, Error)) << Error;
    EXPECT_EQ(Frame.Type, BinaryFrameRunExperiment);
    EXPECT_EQ(Frame.Name, "hardware_vs_software");
    ASSERT_TRUE(Frame.HasShard);
    EXPECT_EQ(Frame.Shard.Map.shards(), Map.shards());
    EXPECT_EQ(Frame.Overrides.HasBaseSeed, C.HasBaseSeed);
    if (C.HasBaseSeed) {
      EXPECT_EQ(Frame.Overrides.BaseSeed, Overrides.BaseSeed);
    }
    EXPECT_EQ(Frame.Overrides.HasReseedLoops, C.HasReseedLoops);
    if (C.HasReseedLoops) {
      EXPECT_EQ(Frame.Overrides.ReseedLoops, C.ReseedLoops);
    }
  }
}

TEST(BinaryRequestCodec, EveryPrefixOfARequestIsCleanlyRefused) {
  // The fuzz-style truncation gate: the encoding is self-delimiting,
  // so every strict prefix of a valid request must be rejected — never
  // misparsed into a shorter valid frame — and trailing garbage after
  // a complete one must be too.
  ShardMap Map({"127.0.0.1:1", "127.0.0.1:2"});
  ShardSpec Claim{1, Map};
  std::string GridBuf;
  encodeBinaryGrid(GridBuf, fullGrid());

  ExperimentOverrides Overrides;
  Overrides.HasBaseSeed = true;
  Overrides.BaseSeed = 99;
  Overrides.HasReseedLoops = true;
  Overrides.ReseedLoops = true;

  std::string Requests[2];
  encodeBinarySweepRequest(Requests[0], /*HasId=*/true, /*Id=*/3, &Claim,
                           GridBuf);
  encodeBinaryRunExperimentRequest(Requests[1], /*HasId=*/true, /*Id=*/4,
                                   &Claim, "attraction_buffers",
                                   Overrides);
  for (const std::string &Payload : Requests) {
    BinaryRequestFrame Out;
    std::string Error;
    ASSERT_TRUE(decodeBinaryRequestFrame(Payload, Out, Error)) << Error;
    for (size_t Len = 0; Len != Payload.size(); ++Len) {
      EXPECT_FALSE(
          decodeBinaryRequestFrame(Payload.substr(0, Len), Out, Error))
          << "prefix of " << Len << " of " << Payload.size()
          << " bytes decoded";
    }
    EXPECT_FALSE(decodeBinaryRequestFrame(Payload + '\0', Out, Error));
  }
}

TEST(BinaryRequestCodec, FuzzedGarbageIsRefusedWithoutHarm) {
  // Random buffers and random single-byte corruptions of a valid
  // request: the decoder must classify every input — accept or refuse
  // with a message — without crashing or reading out of bounds (ASan /
  // the gtest harness turns any overrun into a failure).
  std::mt19937_64 Rng(0xfa22ed);
  std::uniform_int_distribution<int> Byte(0, 255);
  std::uniform_int_distribution<size_t> Len(0, 300);

  for (int Trial = 0; Trial != 500; ++Trial) {
    std::string Garbage;
    size_t N = Len(Rng);
    Garbage.reserve(N);
    for (size_t I = 0; I != N; ++I)
      Garbage.push_back(static_cast<char>(Byte(Rng)));
    BinaryRequestFrame Out;
    std::string Error;
    if (!decodeBinaryRequestFrame(Garbage, Out, Error)) {
      EXPECT_FALSE(Error.empty()) << "refusals must say why";
    }
  }

  std::string GridBuf, Valid;
  encodeBinaryGrid(GridBuf, fullGrid());
  encodeBinarySweepRequest(Valid, /*HasId=*/true, /*Id=*/1, nullptr,
                           GridBuf);
  std::uniform_int_distribution<size_t> Pos(0, Valid.size() - 1);
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::string Mutated = Valid;
    Mutated[Pos(Rng)] ^= static_cast<char>(1 + Byte(Rng) % 255);
    BinaryRequestFrame Out;
    std::string Error;
    // A flipped name byte can still decode; a flipped structural byte
    // must refuse — either way, cleanly.
    (void)decodeBinaryRequestFrame(Mutated, Out, Error);
  }

  // The row decoder must refuse request frames and vice versa: the
  // type byte partitions the CVW2 payload space.
  BinaryRowFrame RowOut;
  std::string Error;
  EXPECT_FALSE(decodeBinaryRowFrame(Valid, RowOut, Error));
  BinaryRowFrame RowFrame;
  RowFrame.Entries.emplace_back();
  RowFrame.Entries.back().Row = distinctiveRow();
  std::string RowPayload;
  encodeBinaryRowFrame(RowFrame, RowPayload);
  BinaryRequestFrame ReqOut;
  EXPECT_FALSE(decodeBinaryRequestFrame(RowPayload, ReqOut, Error));
}

TEST(BinaryRequestCodec, ThousandPointGridBeatsJsonByThreeX) {
  // The tentpole's measured acceptance: a 1000-point grid with an
  // explicit machine axis must encode at least 3x smaller than its
  // JSON form (which spells out all 19 config fields per machine —
  // what v4 clients put on the wire).
  SweepGrid Grid;
  Grid.Machines.clear();
  for (unsigned M = 0; M != 250; ++M) {
    MachinePoint P;
    P.Name = "m" + std::to_string(M);
    P.Config.NumClusters = 2 + M % 8;
    P.Config.AttractionBuffersEnabled = M % 2 != 0;
    P.Config.AttractionBufferEntries = 8 + M % 32;
    Grid.Machines.push_back(std::move(P));
  }
  Grid.Schemes = crossSchemes(
      {CoherencePolicy::Baseline, CoherencePolicy::MDC},
      {ClusterHeuristic::PrefClus});
  BenchmarkSpec B;
  B.Name = "size-probe";
  LoopSpec L;
  L.Name = "size-probe.loop0";
  L.SeedBase = 11;
  B.Loops = {L};
  BenchmarkSpec B2 = B;
  B2.Name = "size-probe2";
  Grid.Benchmarks = {B, B2};
  ASSERT_EQ(Grid.size(), 1000u);

  const std::string Json = gridToJson(Grid).dump();
  std::string Binary;
  encodeBinaryGrid(Binary, Grid);

  // Both encodings must still mean the same grid.
  std::string Payload, Error;
  encodeBinarySweepRequest(Payload, false, 0, nullptr, Binary);
  BinaryRequestFrame Frame;
  ASSERT_TRUE(decodeBinaryRequestFrame(Payload, Frame, Error)) << Error;
  expectGridsEqual(Frame.Grid, Grid);

  EXPECT_GE(Json.size(), 3 * Payload.size())
      << "binary grid request must be at least 3x smaller than JSON ("
      << Json.size() << " vs " << Payload.size() << " bytes)";
}

} // namespace
