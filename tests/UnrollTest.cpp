//===- tests/UnrollTest.cpp - loop unrolling tests ------------------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/ir/DDGBuilder.h"
#include "cvliw/ir/Unroll.h"
#include "cvliw/profile/ClusterProfiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace cvliw;

namespace {

/// load a[i]; acc += v; store b[i] — stride 4 (one interleave chunk):
/// the home cluster rotates every iteration before unrolling.
Loop rotatingLoop() {
  Loop L("rot");
  L.ProfileTripCount = 256;
  L.ExecTripCount = 512;
  unsigned A = L.addObject({"a", 0, 4096, UniqueAliasGroup});
  unsigned BObj = L.addObject({"b", 0x10000, 4096, UniqueAliasGroup});
  unsigned SLoad = L.addStream(AddressExpr::affine(A, 0, 4, 4));
  unsigned SStore = L.addStream(AddressExpr::affine(BObj, 0, 4, 4));
  L.addOp(Operation::load(1, SLoad));
  L.addOp(Operation::compute(Opcode::IAdd, 2, {2, 1})); // acc += v.
  L.addOp(Operation::store(1, SStore));
  return L;
}

/// The multiset of addresses a loop touches over \p DynIters original
/// iterations for memory op class \p WantStore.
std::vector<uint64_t> addressTrace(const Loop &L, uint64_t OrigIters,
                                   unsigned Factor, bool WantStore) {
  std::vector<uint64_t> Out;
  uint64_t Iters = OrigIters / Factor;
  for (uint64_t I = 0; I != Iters; ++I)
    for (unsigned Id = 0; Id != L.numOps(); ++Id)
      if (L.op(Id).isMemory() && L.op(Id).isStore() == WantStore)
        Out.push_back(L.addressOf(Id, I, L.ExecSeed));
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(Unroll, FactorOneIsIdentity) {
  Loop L = rotatingLoop();
  Loop U = unrollLoop(L, 1);
  EXPECT_EQ(U.numOps(), L.numOps());
  EXPECT_EQ(U.ExecTripCount, L.ExecTripCount);
}

TEST(Unroll, BodyAndStreamsReplicated) {
  Loop L = rotatingLoop();
  Loop U = unrollLoop(L, 4);
  EXPECT_EQ(U.numOps(), 4 * L.numOps());
  EXPECT_EQ(U.streams().size(), 4 * L.streams().size());
  EXPECT_EQ(U.ExecTripCount, L.ExecTripCount / 4);
}

TEST(Unroll, AddressTracePreserved) {
  // Unrolling must not change which addresses the loop touches.
  Loop L = rotatingLoop();
  Loop U = unrollLoop(L, 4);
  for (bool Stores : {false, true}) {
    std::vector<uint64_t> Before = addressTrace(L, 512, 1, Stores);
    std::vector<uint64_t> After = addressTrace(U, 512, 4, Stores);
    EXPECT_EQ(Before, After);
  }
}

TEST(Unroll, MakesStreamsClusterConsistent) {
  MachineConfig Machine = MachineConfig::baseline(); // N*I = 16.
  Loop L = rotatingLoop();                           // Stride 4.
  EXPECT_DOUBLE_EQ(clusterConsistentFraction(L, Machine), 0.0);
  Loop U = unrollLoop(L, 4); // Stride 16 per copy.
  EXPECT_DOUBLE_EQ(clusterConsistentFraction(U, Machine), 1.0);

  // And the profiler confirms: every unrolled memory op is unanimous.
  ClusterProfile P = profileLoop(U, Machine);
  for (unsigned Id = 0; Id != U.numOps(); ++Id) {
    if (!U.op(Id).isMemory())
      continue;
    unsigned Pref = P.preferredCluster(Id);
    EXPECT_DOUBLE_EQ(P.fractionToCluster(Id, Pref), 1.0) << "op " << Id;
  }
}

TEST(Unroll, CopiesPreferDistinctClusters) {
  MachineConfig Machine = MachineConfig::baseline();
  Loop U = unrollLoop(rotatingLoop(), 4);
  ClusterProfile P = profileLoop(U, Machine);
  // The four copies of the load walk consecutive chunks: their homes
  // must be the four distinct clusters.
  std::vector<unsigned> Homes;
  for (unsigned Id = 0; Id != U.numOps(); ++Id)
    if (U.op(Id).isLoad())
      Homes.push_back(P.preferredCluster(Id));
  std::sort(Homes.begin(), Homes.end());
  EXPECT_EQ(Homes, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(Unroll, RegisterFlowStaysWellFormed) {
  Loop U = unrollLoop(rotatingLoop(), 4);
  DDG G = buildRegisterFlowDDG(U);
  EXPECT_TRUE(verifyDDG(U, G));

  // The accumulator must chain across copies: copy k's add consumes
  // copy k-1's add (distance 0 within the unrolled body) and copy 0
  // consumes copy 3's value at distance 1.
  std::vector<unsigned> Adds;
  for (unsigned Id = 0; Id != U.numOps(); ++Id)
    if (U.op(Id).Op == Opcode::IAdd)
      Adds.push_back(Id);
  ASSERT_EQ(Adds.size(), 4u);
  EXPECT_TRUE(G.hasRegFlow(Adds[0], Adds[1], 0));
  EXPECT_TRUE(G.hasRegFlow(Adds[1], Adds[2], 0));
  EXPECT_TRUE(G.hasRegFlow(Adds[2], Adds[3], 0));
  EXPECT_TRUE(G.hasRegFlow(Adds[3], Adds[0], 1));
}

TEST(Unroll, ChooseFactorMatchesGranule) {
  MachineConfig Machine = MachineConfig::baseline(); // Granule 16.
  Loop L = rotatingLoop();                           // Stride 4.
  EXPECT_EQ(chooseUnrollFactor(L, Machine), 4u);

  Machine.InterleaveBytes = 2; // Granule 8.
  EXPECT_EQ(chooseUnrollFactor(L, Machine), 2u);
}

TEST(Unroll, ChooseFactorIsOneWhenAlreadyConsistent) {
  MachineConfig Machine = MachineConfig::baseline();
  Loop L("cons");
  unsigned Obj = L.addObject({"a", 0, 4096, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::affine(Obj, 0, 16, 4))));
  EXPECT_EQ(chooseUnrollFactor(L, Machine), 1u);
}

TEST(Unroll, ChooseFactorIsOneForGatherOnlyLoops) {
  MachineConfig Machine = MachineConfig::baseline();
  Loop L("gather");
  unsigned Obj = L.addObject({"t", 0, 1024, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::gather(Obj, 4, 3))));
  EXPECT_EQ(chooseUnrollFactor(L, Machine), 1u);
}

TEST(Unroll, GatherCopiesGetDistinctSeeds) {
  Loop L("g");
  L.ExecTripCount = 64;
  unsigned Obj = L.addObject({"t", 0, 1024, UniqueAliasGroup});
  L.addOp(Operation::load(1, L.addStream(AddressExpr::gather(Obj, 4, 3))));
  Loop U = unrollLoop(L, 2);
  EXPECT_NE(U.stream(0).GatherSeed, U.stream(1).GatherSeed);
}
