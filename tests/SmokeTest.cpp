//===- tests/SmokeTest.cpp - end-to-end pipeline smoke test ---------------===//
//
// Part of the cvliw project (CGO'03 clustered-VLIW coherence reproduction).
//
//===----------------------------------------------------------------------===//

#include "cvliw/pipeline/Experiment.h"

#include <gtest/gtest.h>

using namespace cvliw;

TEST(Smoke, OneLoopThroughAllPolicies) {
  LoopSpec Spec;
  Spec.Name = "smoke";
  Spec.ProfileTrip = 200;
  Spec.ExecTrip = 400;
  Spec.Chains = {ChainSpec{1, 1, 2, 1, true}};
  Spec.ConsistentLoads = 4;
  Spec.ConsistentStores = 1;
  Spec.SeedBase = 99;

  for (CoherencePolicy Policy :
       {CoherencePolicy::Baseline, CoherencePolicy::MDC,
        CoherencePolicy::DDGT}) {
    for (ClusterHeuristic Heuristic :
         {ClusterHeuristic::PrefClus, ClusterHeuristic::MinComs}) {
      ExperimentConfig Config;
      Config.Policy = Policy;
      Config.Heuristic = Heuristic;
      Config.CheckCoherence = true;
      LoopRunResult R = runLoop(Spec, Config);
      EXPECT_GT(R.II, 0u) << coherencePolicyName(Policy);
      EXPECT_EQ(R.Sim.Iterations, 400u);
      EXPECT_GT(R.Sim.TotalCycles, 0u);
      EXPECT_GT(R.Sim.MemoryAccesses, 0u);
      if (Policy != CoherencePolicy::Baseline) {
        EXPECT_EQ(R.Sim.CoherenceViolations, 0u)
            << coherencePolicyName(Policy) << "/"
            << clusterHeuristicName(Heuristic);
      }
    }
  }
}

TEST(Smoke, SuiteBuilds) {
  auto Suite = mediabenchSuite();
  EXPECT_EQ(Suite.size(), 14u);
  EXPECT_EQ(evaluationSuite().size(), 13u);
  for (const BenchmarkSpec &B : Suite) {
    EXPECT_FALSE(B.Loops.empty()) << B.Name;
    MachineConfig Machine = MachineConfig::baseline();
    Machine.InterleaveBytes = B.InterleaveBytes;
    for (const LoopSpec &Spec : B.Loops) {
      Loop L = buildLoop(Spec, Machine);
      EXPECT_GT(L.numOps(), 0u) << Spec.Name;
      EXPECT_GT(L.numMemoryOps(), 0u) << Spec.Name;
    }
  }
}
